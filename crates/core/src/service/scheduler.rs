//! The sharpen service scheduler: bounded queues, model-based admission,
//! shape-coalescing batches, simulated-time latency accounting.
//!
//! ## Honesty on a 1-core box
//!
//! The container has one core, so an "async" thread-pool service would
//! measure scheduler overhead, not service behaviour. The scheduler is
//! therefore an explicit single-threaded event loop over **simulated
//! time**: the virtual clock advances by each frame's modeled
//! upload+compute+download seconds (the same deterministic `f64` sums the
//! whole repo uses), arrivals are ingested as the clock passes them, and
//! queueing latency is measured in that currency. Wall-clock is still
//! reported — but only for what wall-clock honestly measures here:
//! per-frame host execution cost and whole-run throughput.
//!
//! ## Policies
//!
//! * **Admission** (per arriving request, deterministic): shed when the
//!   class queue is full, or when the analytical cost model — learned
//!   per-shape simulated frame times, bootstrapped from a per-pixel
//!   estimate — predicts the request would finish past its class SLO.
//!   This is the same use-the-model-instead-of-running-it move the
//!   schedule autotuner makes.
//! * **Batching**: the highest-priority queued request leads a batch; up
//!   to `max_batch` queued requests of the *same shape* coalesce onto it
//!   (priority order, FIFO within a class), so one plan-cache access
//!   serves the whole batch — launch-amortization at the service layer.

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use imagekit::ImageF32;
use simgpu::metrics::{Histogram, MetricsRegistry};
use simgpu::pool::PoolStats;

use crate::gpu::batch::FrameComponents;
use crate::gpu::pipeline::GpuPipeline;
use crate::service::cache::{CacheStats, PlanCache};
use crate::service::traffic::{Priority, Request};

/// Bootstrap simulated cost per pixel, seconds, used for a shape's first
/// admission decision (before any frame of that shape has been measured).
/// Calibrated to the all-opts config on the modeled FirePro W8000 — the
/// learned per-shape value replaces it after the first served frame.
pub const DEFAULT_EST_S_PER_PIXEL: f64 = 3e-9;

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bounded queue length per priority class (backpressure: a full
    /// queue sheds).
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Plan-cache shard count.
    pub cache_shards: usize,
    /// Plan-cache total capacity (plans).
    pub cache_capacity: usize,
    /// Per-class simulated-latency SLO, seconds,
    /// `[interactive, standard, batch]`. Admission sheds a request whose
    /// predicted completion latency exceeds its class SLO.
    pub slo_s: [f64; 3],
    /// Keep served output frames in the report (bit-identity checks; off
    /// for load benches).
    pub keep_outputs: bool,
    /// Key the plan cache on per-shape model-tuned schedules: each cache
    /// miss runs the pixel-invariant cost-model search for the requested
    /// shape and prepares the winning `(OptConfig, Tuning)` instead of
    /// the pipeline's fixed configuration (the summation-order axes stay
    /// pinned — see [`PlanCache::with_per_shape_tuning`]). Served outputs
    /// do not change; only the simulated frame times (and with them
    /// admission and latency) drop.
    pub tune_per_shape: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            max_batch: 16,
            cache_shards: 4,
            cache_capacity: 8,
            slo_s: [0.05, 0.25, 2.0],
            keep_outputs: false,
            tune_per_shape: false,
        }
    }
}

/// Per-class outcome counters and latency histograms.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// Class label (`interactive`, `standard`, `batch`).
    pub label: &'static str,
    /// Requests of this class in the offered stream.
    pub offered: u64,
    /// Requests admitted to a queue.
    pub admitted: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed (queue full or predicted SLO miss).
    pub shed: u64,
    /// Served requests whose simulated latency exceeded the class SLO.
    pub slo_violations: u64,
    /// Per-request wall-clock **service** latency (host seconds executing
    /// the frame; queueing excluded — wall queueing time would be a lie,
    /// see the module docs).
    pub wall: Histogram,
    /// Per-request simulated latency: arrival → completion on the virtual
    /// clock, queueing included.
    pub sim: Histogram,
}

impl ClassReport {
    fn new(label: &'static str) -> Self {
        ClassReport {
            label,
            offered: 0,
            admitted: 0,
            served: 0,
            shed: 0,
            slo_violations: 0,
            wall: Histogram::latency_seconds(),
            sim: Histogram::latency_seconds(),
        }
    }
}

/// Everything a service run measured.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Requests in the offered stream.
    pub requests: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests that rode an existing batch (batch position > 0) — each
    /// one is a plan-cache access amortised away.
    pub coalesced: u64,
    /// High-water mark of total queued requests.
    pub peak_queued: usize,
    /// Wall-clock duration of the run, seconds.
    pub wall_s: f64,
    /// Virtual clock when the last frame completed, seconds.
    pub sim_end_s: f64,
    /// Sum of served frames' simulated times, seconds (busy time; the
    /// difference to `sim_end_s` is simulated idle).
    pub sim_busy_s: f64,
    /// Per-class counters and latency histograms, `[interactive,
    /// standard, batch]`.
    pub classes: [ClassReport; 3],
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Buffer-pool counters of the service context after the run.
    pub pool: PoolStats,
    /// Ids of shed requests, in shed order (determinism checks).
    pub shed_ids: Vec<u64>,
    /// Served `(request id, output frame)` pairs when
    /// [`ServiceConfig::keep_outputs`] was set, in completion order.
    pub outputs: Vec<(u64, ImageF32)>,
}

impl ServiceReport {
    /// Wall-clock throughput, served frames per second.
    pub fn wall_fps(&self) -> f64 {
        if self.wall_s <= 0.0 {
            0.0
        } else {
            self.served as f64 / self.wall_s
        }
    }

    /// Simulated throughput, served frames per simulated second.
    pub fn sim_fps(&self) -> f64 {
        if self.sim_end_s <= 0.0 {
            0.0
        } else {
            self.served as f64 / self.sim_end_s
        }
    }

    /// All-class wall service-latency histogram.
    pub fn wall_latency(&self) -> Histogram {
        let mut h = Histogram::latency_seconds();
        for c in &self.classes {
            h.merge(&c.wall);
        }
        h
    }

    /// All-class simulated latency histogram.
    pub fn sim_latency(&self) -> Histogram {
        let mut h = Histogram::latency_seconds();
        for c in &self.classes {
            h.merge(&c.sim);
        }
        h
    }

    /// Exports counters, gauges and latency histograms into a fresh
    /// metrics registry under the `service.` prefix.
    pub fn to_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.inc("service.requests", self.requests);
        reg.inc("service.served", self.served);
        reg.inc("service.shed", self.shed);
        reg.inc("service.batches", self.batches);
        reg.inc("service.coalesced", self.coalesced);
        reg.inc("service.cache.hits", self.cache.hits);
        reg.inc("service.cache.misses", self.cache.misses);
        reg.inc("service.cache.evictions", self.cache.evictions);
        reg.set_gauge("service.queue.peak", self.peak_queued as f64);
        reg.set_gauge("service.wall_fps", self.wall_fps());
        reg.set_gauge("service.sim_fps", self.sim_fps());
        reg.record_histogram("service.latency.wall_s", &self.wall_latency());
        reg.record_histogram("service.latency.sim_s", &self.sim_latency());
        for c in &self.classes {
            reg.inc(&format!("service.{}.served", c.label), c.served);
            reg.inc(&format!("service.{}.shed", c.label), c.shed);
            reg.inc(
                &format!("service.{}.slo_violations", c.label),
                c.slo_violations,
            );
            reg.record_histogram(&format!("service.{}.latency.sim_s", c.label), &c.sim);
            reg.record_histogram(&format!("service.{}.latency.wall_s", c.label), &c.wall);
        }
        self.pool.to_registry("service.pool", &mut reg);
        reg
    }

    /// Multi-line human summary (the `sharpen serve` output).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "served {}/{} requests ({} shed) in {} batches ({} coalesced), peak queue {}\n\
             throughput: {:.1} frames/s wall, {:.1} frames/s simulated\n\
             latency (wall, service): {}\n\
             latency (simulated, arrival→completion): {}\n",
            self.served,
            self.requests,
            self.shed,
            self.batches,
            self.coalesced,
            self.peak_queued,
            self.wall_fps(),
            self.sim_fps(),
            self.wall_latency().summary(1e3, "ms"),
            self.sim_latency().summary(1e3, "ms"),
        );
        for c in &self.classes {
            s.push_str(&format!(
                "  {:<12} served {:>4}  shed {:>3}  slo-miss {:>3}  sim {}\n",
                c.label,
                c.served,
                c.shed,
                c.slo_violations,
                c.sim.summary(1e3, "ms"),
            ));
        }
        s.push_str(&format!(
            "plan cache: {} hits / {} misses / {} evictions ({:.0}% hit), \
             prepare {:.1} ms wall\n\
             buffer pool: {} hits / {} misses / {} evicted, {} B parked\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.hit_rate() * 100.0,
            self.cache.prepare_wall_s * 1e3,
            self.pool.hits,
            self.pool.misses,
            self.pool.evicted,
            self.pool.pooled_bytes,
        ));
        s
    }
}

/// The sharpen service: a pipeline configuration plus scheduler policy.
pub struct SharpenService {
    pipe: GpuPipeline,
    cfg: ServiceConfig,
}

impl SharpenService {
    /// Creates a service over `pipe` (its opt config and schedule apply
    /// to every request) with scheduler policy `cfg`.
    pub fn new(pipe: GpuPipeline, cfg: ServiceConfig) -> Self {
        SharpenService { pipe, cfg }
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The pipeline requests are served with.
    pub fn pipeline(&self) -> &GpuPipeline {
        &self.pipe
    }

    /// Runs the stream to completion and reports. Requests must be in
    /// arrival order (as [`generate_requests`](crate::service::traffic::generate_requests)
    /// produces them).
    ///
    /// # Errors
    /// The first frame execution or plan preparation failure aborts the
    /// run (admission sheds are not errors).
    pub fn serve(&self, requests: &[Request]) -> Result<ServiceReport, String> {
        let mut cache = PlanCache::new(
            self.pipe.clone(),
            self.cfg.cache_shards,
            self.cfg.cache_capacity,
        )
        .with_per_shape_tuning(self.cfg.tune_per_shape);
        let mut classes = [
            ClassReport::new(Priority::Interactive.label()),
            ClassReport::new(Priority::Standard.label()),
            ClassReport::new(Priority::Batch.label()),
        ];
        let mut queues: [VecDeque<&Request>; 3] = Default::default();
        // Learned simulated per-frame cost per shape (admission model).
        let mut learned: HashMap<(usize, usize), f64> = HashMap::new();
        let est = |learned: &HashMap<(usize, usize), f64>, r: &Request| -> f64 {
            learned
                .get(&r.shape())
                .copied()
                .unwrap_or(r.pixels() as f64 * DEFAULT_EST_S_PER_PIXEL)
        };

        let started = Instant::now();
        let mut clock = 0.0f64; // the virtual clock, seconds
        let mut sim_busy_s = 0.0f64;
        let mut next = 0usize; // arrival cursor
        let mut out_buf: Vec<f32> = Vec::new();
        let mut outputs = Vec::new();
        let mut shed_ids = Vec::new();
        let mut peak_queued = 0usize;
        let (mut batches, mut coalesced) = (0u64, 0u64);

        loop {
            // Ingest every arrival the clock has passed, applying
            // admission control at ingest time.
            while next < requests.len() && requests[next].arrival_s() <= clock {
                let r = &requests[next];
                next += 1;
                let ci = r.class.index();
                classes[ci].offered += 1;
                // Backlog the request would wait behind: everything queued
                // at its priority or higher (lower classes are overtaken).
                let backlog_s: f64 = queues[..=ci]
                    .iter()
                    .flat_map(|q| q.iter())
                    .map(|q| est(&learned, q))
                    .sum();
                let predicted = (clock - r.arrival_s()) + backlog_s + est(&learned, r);
                if queues[ci].len() >= self.cfg.queue_capacity || predicted > self.cfg.slo_s[ci] {
                    classes[ci].shed += 1;
                    shed_ids.push(r.id);
                    continue;
                }
                classes[ci].admitted += 1;
                queues[ci].push_back(r);
                peak_queued = peak_queued.max(queues.iter().map(VecDeque::len).sum());
            }

            // Idle: jump the clock to the next arrival, or finish.
            if queues.iter().all(VecDeque::is_empty) {
                if next >= requests.len() {
                    break;
                }
                clock = clock.max(requests[next].arrival_s());
                continue;
            }

            // Lead request: head of the highest-priority non-empty queue.
            let lead_class = Priority::ALL
                .into_iter()
                .find(|c| !queues[c.index()].is_empty())
                .expect("some queue is non-empty");
            let lead = queues[lead_class.index()]
                .pop_front()
                .expect("non-empty queue");
            let shape = lead.shape();
            // Coalesce same-shape requests, priority order, FIFO within a
            // class (they jump different-shape requests — that is the
            // point of batching).
            let mut batch = vec![lead];
            for q in queues.iter_mut() {
                let mut i = 0;
                while i < q.len() && batch.len() < self.cfg.max_batch {
                    if q[i].shape() == shape {
                        batch.push(q.remove(i).expect("index in bounds"));
                    } else {
                        i += 1;
                    }
                }
            }
            batches += 1;
            coalesced += batch.len() as u64 - 1;

            // Execute the batch: one plan-cache access, N frames.
            let plan = cache.get(shape)?;
            for r in batch {
                let frame = r.frame();
                out_buf.resize(frame.len(), 0.0);
                let frame_started = Instant::now();
                let comps: FrameComponents = plan.run_into(&frame, &mut out_buf)?;
                let wall = frame_started.elapsed().as_secs_f64();
                let sim_frame = comps.total();
                clock += sim_frame;
                sim_busy_s += sim_frame;
                learned.insert(shape, sim_frame);
                let ci = r.class.index();
                let sim_latency = clock - r.arrival_s();
                classes[ci].served += 1;
                classes[ci].wall.observe(wall);
                classes[ci].sim.observe(sim_latency);
                if sim_latency > self.cfg.slo_s[ci] {
                    classes[ci].slo_violations += 1;
                }
                if self.cfg.keep_outputs {
                    outputs.push((r.id, ImageF32::from_vec(shape.0, shape.1, out_buf.clone())));
                }
            }
        }

        let served = classes.iter().map(|c| c.served).sum();
        let shed = classes.iter().map(|c| c.shed).sum();
        Ok(ServiceReport {
            requests: requests.len() as u64,
            served,
            shed,
            batches,
            coalesced,
            peak_queued,
            wall_s: started.elapsed().as_secs_f64(),
            sim_end_s: clock,
            sim_busy_s,
            classes,
            cache: cache.stats(),
            pool: self.pipe.context().pool_stats(),
            shed_ids,
            outputs,
        })
    }
}
