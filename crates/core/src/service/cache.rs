//! Sharded [`PipelinePlan`] cache with LRU eviction.
//!
//! Preparing a plan is the expensive part of serving a request: it
//! allocates every device buffer for the shape and walks the full
//! schedule construction. The cache amortises that the same way kernel
//! fusion amortises launch overhead — pay once per `(shape, opts,
//! schedule)`, reuse for every compatible request. Shape is the runtime
//! key: the pipeline (and with it the opt config and schedule) is fixed
//! per cache, so two caches with different configs never alias.
//!
//! Shards bound the LRU scan: a key hashes to one shard and eviction
//! decisions are per-shard, mirroring how a production broker shards its
//! plan table to bound tail latency — with the standing 1-core
//! constraint there is no lock-per-shard concurrency win to claim, and
//! none is claimed.

use crate::gpu::pipeline::{GpuPipeline, PipelinePlan};
use std::time::Instant;

/// Counter snapshot for a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Requests served from a resident plan.
    pub hits: u64,
    /// Requests that had to prepare a plan.
    pub misses: u64,
    /// Plans dropped by the LRU policy.
    pub evictions: u64,
    /// Plans currently resident.
    pub resident: usize,
    /// Wall-clock seconds spent preparing plans (the cost the cache
    /// exists to amortise).
    pub prepare_wall_s: f64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when nothing was requested).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    shape: (usize, usize),
    plan: PipelinePlan,
    /// Monotonic last-touch stamp; the shard's smallest is the LRU victim.
    touched: u64,
}

/// A sharded, LRU-evicting cache of prepared plans for one pipeline
/// configuration.
pub struct PlanCache {
    pipe: GpuPipeline,
    shards: Vec<Vec<Entry>>,
    per_shard: usize,
    seq: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    prepare_wall_s: f64,
    tune_per_shape: bool,
}

impl PlanCache {
    /// Creates a cache over `pipe` with `shards` shards holding at most
    /// `capacity` plans in total (rounded up to a whole number per shard;
    /// both are clamped to ≥ 1).
    pub fn new(pipe: GpuPipeline, shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shards);
        PlanCache {
            pipe,
            shards: (0..shards).map(|_| Vec::new()).collect(),
            per_shard,
            seq: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            prepare_wall_s: 0.0,
            tune_per_shape: false,
        }
    }

    /// Keys resident plans on per-shape model-tuned schedules: each miss
    /// runs the pixel-invariant cost-model search of [`crate::tune`] for
    /// the requested shape and prepares the winning `(OptConfig, Tuning)`
    /// instead of the pipeline's fixed configuration (schedule, params and
    /// context are kept). The search pins the two summation-order axes —
    /// the host/device reduction split and the stage-2 placement, whose
    /// float rounding of the global mean *does* change pixels — to the
    /// pipeline's values, so served outputs stay bit-identical while the
    /// simulated frame times beat-or-tie the fixed configuration. The
    /// search itself never executes a pipeline, so the miss path stays
    /// microseconds over plain preparation.
    pub fn with_per_shape_tuning(mut self, on: bool) -> Self {
        self.tune_per_shape = on;
        self
    }

    /// The pipeline plans are prepared from (fixes opts + schedule).
    pub fn pipeline(&self) -> &GpuPipeline {
        &self.pipe
    }

    /// Maximum resident plans (`shards × per-shard capacity`).
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.per_shard
    }

    fn shard_of(&self, shape: (usize, usize)) -> usize {
        // SplitMix64 finaliser over the packed shape: cheap, deterministic,
        // and spreads the small-integer shapes the catalogs use.
        let mut z = ((shape.0 as u64) << 32) | shape.1 as u64;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize % self.shards.len()
    }

    /// Returns the plan for `shape`, preparing (and possibly evicting the
    /// shard's least-recently-used plan) on a miss.
    ///
    /// # Errors
    /// Propagates plan preparation failures (unsupported shapes).
    pub fn get(&mut self, shape: (usize, usize)) -> Result<&mut PipelinePlan, String> {
        let s = self.shard_of(shape);
        self.seq += 1;
        let seq = self.seq;
        let shard = &mut self.shards[s];
        if let Some(i) = shard.iter().position(|e| e.shape == shape) {
            self.hits += 1;
            shard[i].touched = seq;
            return Ok(&mut shard[i].plan);
        }
        self.misses += 1;
        let started = Instant::now();
        let plan = if self.tune_per_shape {
            let ctx = self.pipe.context();
            let r = crate::tune::search_pixel_invariant(
                shape.0,
                shape.1,
                ctx.device(),
                ctx.cpu(),
                self.pipe.opts(),
                self.pipe.tuning(),
            )?;
            GpuPipeline::new(ctx.clone(), *self.pipe.params(), r.opts)
                .with_tuning(r.tuning)
                .with_schedule(self.pipe.schedule())
                .prepared(shape.0, shape.1)?
        } else {
            self.pipe.prepared(shape.0, shape.1)?
        };
        self.prepare_wall_s += started.elapsed().as_secs_f64();
        if shard.len() >= self.per_shard {
            let lru = shard
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.touched)
                .map(|(i, _)| i)
                .expect("full shard is non-empty");
            shard.swap_remove(lru);
            self.evictions += 1;
        }
        shard.push(Entry {
            shape,
            plan,
            touched: seq,
        });
        Ok(&mut shard.last_mut().expect("just pushed").plan)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident: self.shards.iter().map(Vec::len).sum(),
            prepare_wall_s: self.prepare_wall_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::opts::OptConfig;
    use crate::params::SharpnessParams;
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    fn pipe() -> GpuPipeline {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all())
    }

    #[test]
    fn repeat_shapes_hit_after_first_prepare() {
        let mut cache = PlanCache::new(pipe(), 2, 4);
        for _ in 0..5 {
            cache.get((64, 64)).unwrap();
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.resident), (4, 1, 1));
        assert!(s.hit_rate() > 0.79);
        assert!(s.prepare_wall_s > 0.0);
    }

    #[test]
    fn cached_plan_output_matches_fresh_plan() {
        let img = imagekit::generate::natural(64, 64, 3);
        let mut cache = PlanCache::new(pipe(), 1, 2);
        let mut out = vec![0.0f32; img.len()];
        cache.get((64, 64)).unwrap();
        cache
            .get((64, 64))
            .unwrap()
            .run_into(&img, &mut out)
            .unwrap();
        let mut fresh = pipe().prepared(64, 64).unwrap();
        let mut expect = vec![0.0f32; img.len()];
        fresh.run_into(&img, &mut expect).unwrap();
        assert_eq!(out, expect);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        // Single shard of 2: touch order decides the victim.
        let mut cache = PlanCache::new(pipe(), 1, 2);
        cache.get((64, 64)).unwrap();
        cache.get((32, 32)).unwrap();
        cache.get((64, 64)).unwrap(); // refresh 64²
        cache.get((96, 96)).unwrap(); // evicts 32² (LRU)
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().resident, 2);
        cache.get((64, 64)).unwrap(); // still resident
        assert_eq!(cache.stats().hits, 2);
        cache.get((32, 32)).unwrap(); // must re-prepare
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn unsupported_shape_is_an_error_not_a_resident_entry() {
        let mut cache = PlanCache::new(pipe(), 1, 2);
        assert!(cache.get((2, 2)).is_err());
        assert_eq!(cache.stats().resident, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn per_shape_tuning_keeps_pixels_and_never_slows_the_frame() {
        let img = imagekit::generate::natural(64, 96, 9);
        let mut tuned = PlanCache::new(pipe(), 1, 2).with_per_shape_tuning(true);
        let mut out = vec![0.0f32; img.len()];
        let t_tuned = tuned
            .get((64, 96))
            .unwrap()
            .run_into(&img, &mut out)
            .unwrap();
        let mut fixed = pipe().prepared(64, 96).unwrap();
        let mut expect = vec![0.0f32; img.len()];
        let t_fixed = fixed.run_into(&img, &mut expect).unwrap();
        // Bit-identical pixels; the tuned plan's simulated frame can only
        // beat or tie the fixed all-opts configuration.
        assert_eq!(out, expect);
        assert!(t_tuned.total() <= t_fixed.total());
        // Second request of the shape hits the tuned resident plan.
        tuned.get((64, 96)).unwrap();
        assert_eq!(tuned.stats().hits, 1);
    }

    #[test]
    fn shards_partition_the_key_space() {
        let mut cache = PlanCache::new(pipe(), 4, 8);
        for shape in [(64, 64), (32, 32), (96, 96), (64, 32)] {
            cache.get(shape).unwrap();
        }
        assert_eq!(cache.stats().resident, 4);
        assert!(cache.capacity() >= 8);
        // Every shape still hits.
        for shape in [(64, 64), (32, 32), (96, 96), (64, 32)] {
            cache.get(shape).unwrap();
        }
        assert_eq!(cache.stats().hits, 4);
    }
}
