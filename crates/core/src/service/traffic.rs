//! Deterministic synthetic traffic for the sharpen service.
//!
//! Production image-sharpening traffic (TV transcode farms, camera
//! ingest) is a *mixed* stream: a few hot frame shapes dominate, a long
//! tail of odd crops trickles in, arrivals clump into bursts, and
//! requests carry different latency expectations. The generator models
//! exactly that — Zipf-distributed shapes over a ranked catalog, bursty
//! exponential inter-arrival gaps, and a per-request priority class —
//! from a single [`SplitMix64`] seed, so every run of a config replays
//! the identical stream (no wall-clock, no `Date::now`: arrival times are
//! *simulated* seconds).

use imagekit::rng::SplitMix64;
use imagekit::{generate, ImageF32};

/// Request priority class, in scheduling order (lower = served first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// User-facing preview: tight latency SLO.
    Interactive = 0,
    /// Normal single-image jobs.
    Standard = 1,
    /// Bulk/offline work: loose SLO, first to shed.
    Batch = 2,
}

impl Priority {
    /// All classes, in scheduling order.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// Stable lowercase label (metric names, reports).
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }

    /// Index into per-class arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One sharpen request in the synthetic stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Stream-unique id, in arrival order.
    pub id: u64,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Priority class.
    pub class: Priority,
    /// Simulated arrival time in seconds (bit-exact across runs). Stored
    /// as bits so `Request` stays `Eq`/`Hash`-able; see [`Request::arrival_s`].
    pub arrival_s_bits: u64,
    /// Seed selecting the frame's content (a small set of distinct
    /// contents per shape keeps generation cheap while exercising
    /// data-dependent paths).
    pub content_seed: u64,
}

impl Request {
    /// Frame shape `(width, height)` — the batching key.
    pub fn shape(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Simulated arrival time in seconds.
    pub fn arrival_s(&self) -> f64 {
        f64::from_bits(self.arrival_s_bits)
    }

    /// Pixel count (admission-control cost proxy).
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// Materialises the request's input frame (deterministic for the
    /// request's shape + content seed).
    pub fn frame(&self) -> ImageF32 {
        generate::natural(self.width, self.height, self.content_seed)
    }
}

/// Parameters of the synthetic stream.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Number of requests to generate.
    pub requests: usize,
    /// PRNG seed: identical seed ⇒ identical stream, bit for bit.
    pub seed: u64,
    /// Shape catalog in popularity rank order (hottest first).
    pub shapes: Vec<(usize, usize)>,
    /// Zipf exponent over the catalog ranks (larger ⇒ hotter head).
    pub zipf_exponent: f64,
    /// Mean simulated inter-arrival gap, seconds — the offered load knob.
    pub mean_gap_s: f64,
    /// Probability an arrival point is a burst (several requests at the
    /// same instant) rather than a single request.
    pub burst_p: f64,
    /// Maximum burst size (bursts draw uniformly from `2..=burst_max`).
    pub burst_max: usize,
    /// Relative class weights, `[interactive, standard, batch]`.
    pub class_weights: [f64; 3],
    /// Distinct frame contents per shape.
    pub content_variants: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            requests: 256,
            seed: 2015,
            // Hot square heads plus a tail of paper-style odd shapes
            // (1000×700 is the paper's running example aspect, scaled
            // down to keep the default stream cheap).
            shapes: vec![
                (256, 256),
                (128, 128),
                (192, 192),
                (320, 200),
                (96, 96),
                (250, 175),
                (64, 64),
                (160, 90),
            ],
            zipf_exponent: 1.1,
            mean_gap_s: 2e-3,
            burst_p: 0.15,
            burst_max: 6,
            class_weights: [0.2, 0.5, 0.3],
            content_variants: 4,
        }
    }
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits.
fn next_f64(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Generates the stream: requests sorted by arrival time, ids `0..n` in
/// arrival order. Deterministic in `cfg` (same config ⇒ same stream).
pub fn generate_requests(cfg: &TrafficConfig) -> Vec<Request> {
    assert!(!cfg.shapes.is_empty(), "traffic needs a shape catalog");
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);

    // Zipf CDF over catalog ranks: weight(rank r, 1-based) = r^-s.
    let weights: Vec<f64> = (1..=cfg.shapes.len())
        .map(|r| (r as f64).powf(-cfg.zipf_exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }

    let class_total: f64 = cfg.class_weights.iter().sum();
    let mut out = Vec::with_capacity(cfg.requests);
    let mut t = 0.0f64;
    while out.len() < cfg.requests {
        // Exponential gap, then possibly a burst landing at one instant.
        t += -cfg.mean_gap_s * (1.0 - next_f64(&mut rng)).ln();
        let burst = if next_f64(&mut rng) < cfg.burst_p && cfg.burst_max >= 2 {
            2 + (rng.next_u64() % (cfg.burst_max as u64 - 1)) as usize
        } else {
            1
        };
        for _ in 0..burst {
            if out.len() >= cfg.requests {
                break;
            }
            let u = next_f64(&mut rng);
            let rank = cdf.partition_point(|c| *c < u).min(cfg.shapes.len() - 1);
            let (width, height) = cfg.shapes[rank];
            let cu = next_f64(&mut rng) * class_total;
            let class = if cu < cfg.class_weights[0] {
                Priority::Interactive
            } else if cu < cfg.class_weights[0] + cfg.class_weights[1] {
                Priority::Standard
            } else {
                Priority::Batch
            };
            let id = out.len() as u64;
            out.push(Request {
                id,
                width,
                height,
                class,
                arrival_s_bits: t.to_bits(),
                content_seed: cfg
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(id % cfg.content_variants.max(1)),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seed_replays_the_identical_stream() {
        let cfg = TrafficConfig::default();
        let a = generate_requests(&cfg);
        let b = generate_requests(&cfg);
        assert_eq!(a, b);
        let c = generate_requests(&TrafficConfig {
            seed: cfg.seed + 1,
            ..cfg
        });
        assert_ne!(a, c);
    }

    #[test]
    fn stream_is_sorted_with_sequential_ids() {
        let reqs = generate_requests(&TrafficConfig::default());
        assert_eq!(reqs.len(), 256);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
        for w in reqs.windows(2) {
            assert!(w[1].arrival_s() >= w[0].arrival_s());
        }
    }

    #[test]
    fn zipf_head_dominates_and_tail_appears() {
        let reqs = generate_requests(&TrafficConfig {
            requests: 2000,
            ..TrafficConfig::default()
        });
        let catalog = TrafficConfig::default().shapes;
        let count = |shape: (usize, usize)| reqs.iter().filter(|r| r.shape() == shape).count();
        let head = count(catalog[0]);
        let tail: usize = catalog[4..].iter().map(|s| count(*s)).sum();
        assert!(
            head > reqs.len() / 5,
            "hot shape underrepresented: {head}/{}",
            reqs.len()
        );
        assert!(tail > 0, "Zipf tail never sampled");
        // Every request's shape is from the catalog.
        assert!(reqs.iter().all(|r| catalog.contains(&r.shape())));
    }

    #[test]
    fn bursts_put_multiple_requests_at_one_instant() {
        let reqs = generate_requests(&TrafficConfig {
            requests: 500,
            burst_p: 0.5,
            ..TrafficConfig::default()
        });
        let coincident = reqs
            .windows(2)
            .filter(|w| w[0].arrival_s_bits == w[1].arrival_s_bits)
            .count();
        assert!(coincident > 0, "no bursts in a burst-heavy config");
    }

    #[test]
    fn all_classes_are_represented() {
        let reqs = generate_requests(&TrafficConfig {
            requests: 500,
            ..TrafficConfig::default()
        });
        for class in Priority::ALL {
            assert!(
                reqs.iter().any(|r| r.class == class),
                "class {} never sampled",
                class.label()
            );
        }
    }

    #[test]
    fn frames_are_deterministic_per_request() {
        let reqs = generate_requests(&TrafficConfig {
            requests: 4,
            ..TrafficConfig::default()
        });
        assert_eq!(reqs[0].frame(), reqs[0].frame());
        assert_eq!(reqs[0].frame().width(), reqs[0].width);
    }
}
