//! Colour-frame sharpening built on the grayscale pipeline.
//!
//! The paper's algorithm is single-channel; its motivating applications
//! (TV, camera, VCR) process colour frames. Two standard strategies are
//! provided — both are thin orchestration over any [`Sharpener`]
//! implementation (CPU or GPU pipeline):
//!
//! * [`ColorMode::LumaOnly`] — sharpen the BT.601 luma plane and rescale
//!   the RGB pixels by the luma ratio. One pipeline run; chroma untouched,
//!   so no colour fringing.
//! * [`ColorMode::PerChannel`] — sharpen R, G and B independently. Three
//!   runs; maximum acuity, may fringe on saturated edges.

use imagekit::{ImageF32, RgbImageU8};

use crate::cpu::CpuPipeline;
use crate::gpu::GpuPipeline;
use crate::report::RunReport;

/// Anything that can sharpen one grayscale plane.
pub trait Sharpener {
    /// Sharpens one plane, returning the full run report.
    ///
    /// # Errors
    /// On unsupported shapes or invalid parameters.
    fn sharpen(&self, plane: &ImageF32) -> Result<RunReport, String>;
}

impl Sharpener for CpuPipeline {
    fn sharpen(&self, plane: &ImageF32) -> Result<RunReport, String> {
        self.run(plane)
    }
}

impl Sharpener for GpuPipeline {
    fn sharpen(&self, plane: &ImageF32) -> Result<RunReport, String> {
        self.run(plane)
    }
}

/// Colour sharpening strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorMode {
    /// Sharpen the luma plane only (one run, fringe-free).
    LumaOnly,
    /// Sharpen each RGB channel (three runs, maximum acuity).
    PerChannel,
}

/// Result of sharpening a colour frame.
#[derive(Debug, Clone)]
pub struct ColorRun {
    /// The sharpened frame.
    pub output: RgbImageU8,
    /// Total simulated time across the underlying plane runs.
    pub total_s: f64,
    /// Number of grayscale pipeline runs performed (1 or 3).
    pub plane_runs: usize,
}

/// Sharpens a colour frame with the given strategy.
///
/// # Errors
/// Propagates plane-run failures (e.g. frame dimensions not multiples
/// of 4).
pub fn sharpen_rgb(
    sharpener: &impl Sharpener,
    frame: &RgbImageU8,
    mode: ColorMode,
) -> Result<ColorRun, String> {
    match mode {
        ColorMode::LumaOnly => {
            let luma = frame.to_luma();
            let run = sharpener.sharpen(&luma)?;
            Ok(ColorRun {
                output: frame.with_luma(&run.output),
                total_s: run.total_s,
                plane_runs: 1,
            })
        }
        ColorMode::PerChannel => {
            let (r, g, b) = frame.split_channels();
            let mut total = 0.0;
            let mut outs = Vec::with_capacity(3);
            for ch in [r, g, b] {
                let run = sharpener.sharpen(&ch)?;
                total += run.total_s;
                outs.push(run.output);
            }
            Ok(ColorRun {
                output: RgbImageU8::merge_channels(&outs[0], &outs[1], &outs[2]),
                total_s: total,
                plane_runs: 3,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::OptConfig;
    use crate::params::SharpnessParams;
    use imagekit::{generate, metrics};
    use simgpu::context::Context;
    use simgpu::device::DeviceSpec;

    fn frame() -> RgbImageU8 {
        let base = generate::natural(64, 64, 5).to_u8();
        let tex = generate::value_noise(64, 64, 7, 3);
        RgbImageU8::from_fn(64, 64, |x, y| {
            (
                base.get(x, y),
                tex.get(x, y) as u8,
                128u8.saturating_sub(base.get(x, y) / 2),
            )
        })
    }

    fn gpu() -> GpuPipeline {
        GpuPipeline::new(
            Context::new(DeviceSpec::firepro_w8000()),
            SharpnessParams::default(),
            OptConfig::all(),
        )
    }

    #[test]
    fn luma_only_is_one_run_per_channel_is_three() {
        let f = frame();
        let luma = sharpen_rgb(&gpu(), &f, ColorMode::LumaOnly).unwrap();
        let rgb = sharpen_rgb(&gpu(), &f, ColorMode::PerChannel).unwrap();
        assert_eq!(luma.plane_runs, 1);
        assert_eq!(rgb.plane_runs, 3);
        assert!(rgb.total_s > 2.0 * luma.total_s);
    }

    #[test]
    fn both_modes_increase_luma_sharpness() {
        let f = frame();
        let before = metrics::gradient_energy(&f.to_luma());
        for mode in [ColorMode::LumaOnly, ColorMode::PerChannel] {
            let run = sharpen_rgb(&gpu(), &f, mode).unwrap();
            let after = metrics::gradient_energy(&run.output.to_luma());
            assert!(after > before, "{mode:?}: {after} <= {before}");
        }
    }

    #[test]
    fn cpu_and_gpu_sharpeners_agree() {
        let f = frame();
        let cpu = sharpen_rgb(
            &CpuPipeline::new(SharpnessParams::default()),
            &f,
            ColorMode::PerChannel,
        )
        .unwrap();
        let gpu = sharpen_rgb(&gpu(), &f, ColorMode::PerChannel).unwrap();
        // u8 quantisation plus reduction rounding: allow ±1 levels.
        for (a, b) in cpu.output.bytes().iter().zip(gpu.output.bytes()) {
            assert!(a.abs_diff(*b) <= 1, "{a} vs {b}");
        }
    }

    #[test]
    fn gray_frame_keeps_channels_locked() {
        // A grayscale frame must stay grayscale through either mode.
        let g = generate::natural(32, 32, 8).to_u8();
        let f = imagekit::rgb::gray_to_rgb(&g);
        for mode in [ColorMode::LumaOnly, ColorMode::PerChannel] {
            let run = sharpen_rgb(&gpu(), &f, mode).unwrap();
            for y in 0..32 {
                for x in 0..32 {
                    let (r, gg, b) = run.output.get(x, y);
                    assert!(r.abs_diff(gg) <= 1 && gg.abs_diff(b) <= 1);
                }
            }
        }
    }
}
