//! Algorithm parameters and the interpolation matrix.
//!
//! The paper leaves several constants unspecified ("predefined parameter
//! matrix", "user-defined parameters"); the concrete choices here are
//! documented in DESIGN.md §5 and keep the structure (and arithmetic class)
//! of every stage intact.

/// The 4×2 interpolation ("parameter") matrix `P` of the upscale stage
/// (paper Fig. 5): a 4×4 upscaled block is `P · D · Pᵀ` for a 2×2
/// downscaled window `D`.
///
/// Rows are linear-interpolation weights at phases 0, ¼, ½, ¾ between the
/// two supporting samples.
pub const INTERP: [[f32; 2]; 4] = [[1.0, 0.0], [0.75, 0.25], [0.5, 0.5], [0.25, 0.75]];

/// Downscale/upscale factor (the paper's fixed 4).
pub const SCALE: usize = 4;

/// User-tunable sharpening parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharpnessParams {
    /// Gain of the brightness-strength curve.
    pub gain: f32,
    /// Exponent of the brightness-strength curve (the stage's expensive
    /// `pow` — the paper notes "many exponentiations resulting in big
    /// overhead").
    pub gamma: f32,
    /// Upper clamp of the strength value.
    pub s_max: f32,
    /// Overshoot-control tuning factor: how much of the excursion past the
    /// local min/max is kept.
    pub osc: f32,
    /// Small epsilon added to the pEdge mean to avoid division by zero on
    /// constant images.
    pub eps: f32,
}

impl Default for SharpnessParams {
    fn default() -> Self {
        // gain > 1 so that edges at or above the mean magnitude are
        // amplified (strength > 1) while weak texture (edge << mean) is
        // slightly suppressed — the adaptive-sharpening behaviour the
        // strength curve exists for.
        SharpnessParams {
            gain: 1.8,
            gamma: 0.5,
            s_max: 4.0,
            osc: 0.35,
            eps: 1.0,
        }
    }
}

impl SharpnessParams {
    /// Validates parameter ranges, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.gain.is_finite() || self.gain < 0.0 {
            return Err(format!("gain must be finite and >= 0, got {}", self.gain));
        }
        if !self.gamma.is_finite() || self.gamma <= 0.0 {
            return Err(format!("gamma must be finite and > 0, got {}", self.gamma));
        }
        if !self.s_max.is_finite() || self.s_max <= 0.0 {
            return Err(format!("s_max must be finite and > 0, got {}", self.s_max));
        }
        if !(0.0..=1.0).contains(&self.osc) {
            return Err(format!("osc must be in [0, 1], got {}", self.osc));
        }
        if !self.eps.is_finite() || self.eps <= 0.0 {
            return Err(format!("eps must be finite and > 0, got {}", self.eps));
        }
        Ok(())
    }
}

/// Smallest width/height the pipeline accepts. The Sobel stencil and the
/// two-pixel border band both need three rows/columns to be defined at
/// all; everything above that is handled by partial downscale blocks and
/// clamped upscale writes.
pub const MIN_DIM: usize = 3;

/// Device row stride for a logical width: `width` rounded up to the next
/// multiple of [`SCALE`], so every device row starts vec4-aligned. The
/// rect-write upload pads each row to this stride and readback crops it
/// again; for multiple-of-4 widths the stride equals the width and the
/// padded layout is byte-identical to the unpadded one.
pub fn device_stride(width: usize) -> usize {
    width.div_ceil(SCALE) * SCALE
}

/// Validates that an image shape is processable by the pipeline: both
/// dimensions at least [`MIN_DIM`], and the pixel count (including the
/// padded device stride and halo) representable without overflow.
pub fn check_shape(width: usize, height: usize) -> Result<(), String> {
    if width < MIN_DIM || height < MIN_DIM {
        return Err(format!(
            "image must be at least {MIN_DIM}x{MIN_DIM}, got {width}x{height}"
        ));
    }
    // The largest allocation derived from the shape is the padded source,
    // (stride + 2) x (height + 2) elements; reject anything whose padded
    // pixel count cannot be computed (or addressed) in usize.
    let padded_w = width
        .div_ceil(SCALE)
        .checked_mul(SCALE)
        .and_then(|s| s.checked_add(2));
    let padded_h = height.checked_add(2);
    match (padded_w, padded_h) {
        (Some(pw), Some(ph)) if pw.checked_mul(ph).is_some() => Ok(()),
        _ => Err(format!("image dimensions {width}x{height} overflow usize")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interp_rows_are_affine() {
        for row in INTERP {
            assert!((row[0] + row[1] - 1.0).abs() < 1e-6);
            assert!(row[0] >= 0.0 && row[1] >= 0.0);
        }
        // Phase 0 is the identity row.
        assert_eq!(INTERP[0], [1.0, 0.0]);
    }

    #[test]
    fn default_params_valid() {
        assert!(SharpnessParams::default().validate().is_ok());
    }

    #[test]
    fn invalid_params_rejected() {
        let bad = [
            SharpnessParams {
                gain: -1.0,
                ..SharpnessParams::default()
            },
            SharpnessParams {
                gamma: 0.0,
                ..SharpnessParams::default()
            },
            SharpnessParams {
                osc: 1.5,
                ..SharpnessParams::default()
            },
            SharpnessParams {
                eps: 0.0,
                ..SharpnessParams::default()
            },
            SharpnessParams {
                s_max: f32::NAN,
                ..SharpnessParams::default()
            },
        ];
        for p in bad {
            assert!(p.validate().is_err(), "{p:?}");
        }
    }

    #[test]
    fn shape_checks() {
        assert!(check_shape(256, 256).is_ok());
        assert!(check_shape(448, 448).is_ok());
        assert!(check_shape(16, 16).is_ok());
        assert!(check_shape(100, 100).is_ok());
        // Arbitrary (non-multiple-of-4, odd, tiny) shapes are accepted.
        assert!(check_shape(102, 100).is_ok());
        assert!(check_shape(1001, 701).is_ok());
        assert!(check_shape(3, 3).is_ok());
        assert!(check_shape(3, 1000).is_ok());
        // Below the 3x3 stencil minimum, or overflowing, is rejected.
        assert!(check_shape(2, 16).is_err());
        assert!(check_shape(16, 2).is_err());
        assert!(check_shape(0, 0).is_err());
        assert!(check_shape(usize::MAX - 1, usize::MAX - 1).is_err());
        assert!(check_shape(usize::MAX, 3).is_err());
    }

    #[test]
    fn device_stride_rounds_up_to_vec4() {
        assert_eq!(device_stride(64), 64);
        assert_eq!(device_stride(1000), 1000);
        assert_eq!(device_stride(1001), 1004);
        assert_eq!(device_stride(3), 4);
        assert_eq!(device_stride(5), 8);
    }
}
