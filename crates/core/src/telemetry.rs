//! Per-kernel efficiency telemetry derived from finished command records.
//!
//! The paper's quantitative claims are memory-traffic claims: vectorization
//! cuts Sobel's redundant global loads from ~8 to ~4.5 per source pixel
//! (§V.D), and the transfer/fusion optimizations show up as bytes moved.
//! This module turns the raw [`CostCounters`] the queue already records
//! into those numbers — global loads per source pixel, vector-lane
//! efficiency, arithmetic intensity, achieved vs peak bandwidth, modeled
//! occupancy — so the claims are *machine-checked* metrics with committed
//! baselines (`scripts/check_metrics.sh`) instead of prose.
//!
//! Everything here is **observation-only**: collection walks immutable
//! `&[CommandRecord]` slices after a frame has finished and writes into its
//! own [`MetricsRegistry`]. It cannot perturb pixels or simulated seconds
//! (enforced by `tests/telemetry.rs` across all 64 opt configs, and by a
//! `lint_invariants.sh` rule that rejects mutable access to the observed
//! types from this file).

use std::fmt::Write as _;
use std::sync::Arc;

use simgpu::cost::CostCounters;
use simgpu::device::DeviceSpec;
use simgpu::metrics::MetricsRegistry;
use simgpu::queue::{CommandKind, CommandRecord};
use simgpu::timing::kernel_time;

use crate::gpu::opts::OptConfig;
use crate::report::{classify_stage_lane, StageLane};

/// Aggregated efficiency metrics for one kernel (all dispatches of one
/// command name within a frame).
#[derive(Debug, Clone)]
pub struct KernelMetrics {
    /// Kernel name (the queue's interned command name).
    pub name: Arc<str>,
    /// Number of dispatches aggregated.
    pub dispatches: u64,
    /// Total simulated seconds across dispatches.
    pub seconds: f64,
    /// Merged cost counters across dispatches.
    pub counters: CostCounters,
    /// Duration-weighted mean occupancy (the cost model's utilisation
    /// factor, 0..1) across dispatches.
    pub occupancy: f64,
}

impl KernelMetrics {
    /// Global **loads** (reads) per source pixel, counting one load per
    /// 4-byte element: `read_bytes / 4 / (width*height)`. The paper's
    /// "8 → ~4.5 loads/pixel" Sobel claim in metric form.
    pub fn loads_per_source_pixel(&self, pixels: u64) -> f64 {
        if pixels == 0 {
            return 0.0;
        }
        let read_bytes = self.counters.global_read_scalar + self.counters.global_read_vector;
        read_bytes as f64 / 4.0 / pixels as f64
    }

    /// Fraction of global-memory bytes moved through vector (`vloadN` /
    /// `vstoreN`) accesses — the vector-lane efficiency of the kernel's
    /// memory traffic (0..1).
    pub fn vector_fraction(&self) -> f64 {
        let total = self.counters.global_bytes();
        if total == 0 {
            return 0.0;
        }
        let vec = self.counters.global_read_vector + self.counters.global_write_vector;
        vec as f64 / total as f64
    }

    /// Arithmetic intensity: ALU operations per global-memory byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.counters.global_bytes();
        if bytes == 0 {
            return 0.0;
        }
        self.counters.ops.total() as f64 / bytes as f64
    }

    /// Achieved global-memory bandwidth, bytes/second of simulated time
    /// (includes launch overhead and occupancy derating — the bandwidth
    /// the kernel *sustains*, not the burst rate).
    pub fn achieved_bandwidth(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.counters.global_bytes() as f64 / self.seconds
    }

    /// Achieved bandwidth as a fraction of the device's peak (0..1+).
    pub fn bandwidth_fraction(&self, dev: &DeviceSpec) -> f64 {
        if dev.mem_bw <= 0.0 {
            return 0.0;
        }
        self.achieved_bandwidth() / dev.mem_bw
    }
}

/// Telemetry for one executed frame: per-kernel efficiency metrics plus
/// lane totals, derived from the frame's command records.
#[derive(Debug, Clone)]
pub struct FrameTelemetry {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Total simulated seconds (sum of all command durations).
    pub simulated_s: f64,
    /// Commands recorded.
    pub commands: u64,
    /// Per-kernel metrics, in first-dispatch order.
    pub kernels: Vec<KernelMetrics>,
    /// Simulated seconds on the upload lane (host→device transfers).
    pub upload_s: f64,
    /// Simulated seconds on the compute lane (kernels, host stages, sync).
    pub compute_s: f64,
    /// Simulated seconds on the download lane (device→host transfers).
    pub download_s: f64,
    /// Peak global-memory bandwidth of the device, bytes/second.
    pub device_mem_bw: f64,
    /// Banding counters when the frame ran under a
    /// [`Schedule::Banded`](crate::gpu::Schedule) schedule: band count,
    /// rows per band and the peak cache-resident working set. `None` for
    /// monolithic frames.
    pub banded: Option<crate::gpu::BandedStats>,
}

impl FrameTelemetry {
    /// Derives telemetry from a finished frame's command records.
    ///
    /// Only reads the records: kernel records with counters are aggregated
    /// by name; every record contributes to its lane total.
    pub fn collect(
        records: &[CommandRecord],
        dev: &DeviceSpec,
        width: usize,
        height: usize,
    ) -> Self {
        let mut t = FrameTelemetry {
            width,
            height,
            simulated_s: 0.0,
            commands: records.len() as u64,
            kernels: Vec::new(),
            upload_s: 0.0,
            compute_s: 0.0,
            download_s: 0.0,
            device_mem_bw: dev.mem_bw,
            banded: None,
        };
        for r in records {
            t.simulated_s += r.duration_s;
            match classify_stage_lane(&r.name) {
                StageLane::Upload => t.upload_s += r.duration_s,
                StageLane::Compute => t.compute_s += r.duration_s,
                StageLane::Download => t.download_s += r.duration_s,
            }
            if r.kind != CommandKind::Kernel {
                continue;
            }
            let Some(c) = &r.counters else { continue };
            let util = kernel_time(dev, c).utilisation;
            let k = match t.kernels.iter_mut().find(|k| k.name == r.name) {
                Some(k) => k,
                None => {
                    t.kernels.push(KernelMetrics {
                        name: Arc::clone(&r.name),
                        dispatches: 0,
                        seconds: 0.0,
                        counters: CostCounters::new(),
                        occupancy: 0.0,
                    });
                    t.kernels.last_mut().expect("just pushed")
                }
            };
            k.dispatches += 1;
            k.seconds += r.duration_s;
            k.counters.merge(c);
            // Accumulate duration-weighted; normalised in the fixup below.
            k.occupancy += util * r.duration_s;
        }
        for k in &mut t.kernels {
            if k.seconds > 0.0 {
                k.occupancy /= k.seconds;
            }
        }
        t
    }

    /// Source pixels per frame.
    pub fn pixels(&self) -> u64 {
        (self.width * self.height) as u64
    }

    /// The metrics for the kernel named exactly `name`.
    pub fn kernel(&self, name: &str) -> Option<&KernelMetrics> {
        self.kernels.iter().find(|k| &*k.name == name)
    }

    /// Global loads per source pixel of the Sobel kernel (scalar or vec4,
    /// whichever ran) — the paper's §V.D headline metric. `None` if no
    /// Sobel kernel was dispatched.
    pub fn sobel_loads_per_source_pixel(&self) -> Option<f64> {
        self.kernels
            .iter()
            .find(|k| k.name.starts_with("sobel"))
            .map(|k| k.loads_per_source_pixel(self.pixels()))
    }

    /// Total global bytes moved by all kernels.
    pub fn kernel_global_bytes(&self) -> u64 {
        self.kernels.iter().map(|k| k.counters.global_bytes()).sum()
    }

    /// Writes every frame- and kernel-level metric into `reg` under the
    /// stable `frame.*` / `lane.*` / `kernel.<name>.*` schema the baseline
    /// gate diffs against.
    pub fn to_registry(&self, reg: &mut MetricsRegistry) {
        reg.set_gauge("frame.width", self.width as f64);
        reg.set_gauge("frame.height", self.height as f64);
        reg.set_gauge("frame.simulated_s", self.simulated_s);
        reg.inc("frame.commands", self.commands);
        reg.inc(
            "frame.kernel_launches",
            self.kernels.iter().map(|k| k.dispatches).sum(),
        );
        reg.inc("frame.kernel_global_bytes", self.kernel_global_bytes());
        reg.set_gauge("lane.upload_s", self.upload_s);
        reg.set_gauge("lane.compute_s", self.compute_s);
        reg.set_gauge("lane.download_s", self.download_s);
        if let Some(b) = &self.banded {
            reg.set_gauge("banded.bands", b.bands as f64);
            reg.set_gauge("banded.rows_per_band", b.rows_per_band as f64);
            reg.set_gauge("banded.peak_resident_bytes", b.peak_resident_bytes as f64);
        }
        let dev = DeviceSpec {
            mem_bw: self.device_mem_bw,
            ..DeviceSpec::firepro_w8000()
        };
        for k in &self.kernels {
            let p = |field: &str| format!("kernel.{}.{field}", k.name);
            reg.inc(&p("dispatches"), k.dispatches);
            reg.set_gauge(&p("seconds"), k.seconds);
            reg.set_gauge(
                &p("loads_per_source_pixel"),
                k.loads_per_source_pixel(self.pixels()),
            );
            reg.set_gauge(&p("vector_fraction"), k.vector_fraction());
            reg.set_gauge(&p("arith_intensity"), k.arithmetic_intensity());
            reg.set_gauge(&p("achieved_gbps"), k.achieved_bandwidth() / 1e9);
            reg.set_gauge(&p("bw_fraction"), k.bandwidth_fraction(&dev));
            reg.set_gauge(&p("occupancy"), k.occupancy);
        }
    }

    /// Renders the per-kernel efficiency table: dispatches, simulated time,
    /// loads/source-pixel, vector fraction, arithmetic intensity, achieved
    /// bandwidth (absolute and vs peak), and modeled occupancy.
    pub fn efficiency_table(&self) -> String {
        let name_w = self
            .kernels
            .iter()
            .map(|k| k.name.chars().count())
            .max()
            .unwrap_or(6)
            .max(6);
        let dev = DeviceSpec {
            mem_bw: self.device_mem_bw,
            ..DeviceSpec::firepro_w8000()
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_w$} {:>5} {:>9} {:>9} {:>6} {:>7} {:>8} {:>6} {:>5}",
            "kernel", "disp", "sim µs", "loads/px", "vec%", "flop/B", "GB/s", "%peak", "occ",
        );
        for k in &self.kernels {
            let _ = writeln!(
                out,
                "{:<name_w$} {:>5} {:>9.1} {:>9.3} {:>6.1} {:>7.2} {:>8.1} {:>6.1} {:>5.2}",
                k.name,
                k.dispatches,
                k.seconds * 1e6,
                k.loads_per_source_pixel(self.pixels()),
                k.vector_fraction() * 100.0,
                k.arithmetic_intensity(),
                k.achieved_bandwidth() / 1e9,
                k.bandwidth_fraction(&dev) * 100.0,
                k.occupancy,
            );
        }
        let _ = writeln!(
            out,
            "lanes: upload {:.1} µs, compute {:.1} µs, download {:.1} µs; total {:.1} µs over {} commands",
            self.upload_s * 1e6,
            self.compute_s * 1e6,
            self.download_s * 1e6,
            self.simulated_s * 1e6,
            self.commands,
        );
        if let Some(b) = &self.banded {
            let _ = writeln!(
                out,
                "banded: {} bands of {} rows, peak resident {:.1} MiB",
                b.bands,
                b.rows_per_band,
                b.peak_resident_bytes as f64 / (1 << 20) as f64,
            );
        }
        out
    }
}

/// The configurations the committed metric baselines cover: the paper's
/// cumulative optimization ladder (Fig. 14), under filename-safe slugs.
pub fn baseline_configs() -> Vec<(&'static str, OptConfig)> {
    let steps = OptConfig::cumulative_steps();
    let slugs = [
        "step0_base",
        "step1_transfer_fusion",
        "step2_reduction",
        "step3_vector_border",
        "step4_others",
    ];
    assert_eq!(steps.len(), slugs.len(), "slug per cumulative step");
    slugs
        .into_iter()
        .zip(steps)
        .map(|(slug, (_, cfg))| (slug, cfg))
        .collect()
}

/// Seed of the deterministic workload the metric baselines run on.
pub const BASELINE_SEED: u64 = 2015;
/// Frame edge (square) of the baseline workload.
pub const BASELINE_WIDTH: usize = 256;

/// Runs one baseline configuration on the deterministic workload and
/// returns its metrics registry — the generator behind both
/// `metrics_baseline` (emit/check) and `repro --metrics-dir`. The registry
/// also carries the static access verifier's `verify.*` gauges for the same
/// shape/config, so the committed baselines catch accounting regressions
/// (dispatch count, access windows, declared/charged bytes, ratio slack),
/// and the schedule tuner's `tune.*` gauges (guided search at the baseline
/// shape — all deterministic; search wall time is deliberately absent), so
/// they catch cost-model and search regressions too.
///
/// # Errors
/// Propagates pipeline failures (cannot happen for the committed configs
/// unless the pipeline itself regresses).
pub fn baseline_registry(cfg: &OptConfig) -> Result<MetricsRegistry, String> {
    use simgpu::context::Context;
    let img = imagekit::generate::natural(BASELINE_WIDTH, BASELINE_WIDTH, BASELINE_SEED);
    let ctx = Context::new(DeviceSpec::firepro_w8000());
    let pipe =
        crate::gpu::GpuPipeline::new(ctx.clone(), crate::params::SharpnessParams::default(), *cfg);
    let (_, tel) = pipe.run_with_telemetry(&img)?;
    let mut reg = MetricsRegistry::new();
    tel.to_registry(&mut reg);
    let proof = crate::gpu::verify_static(
        BASELINE_WIDTH,
        BASELINE_WIDTH,
        cfg,
        &crate::gpu::Tuning::default(),
        crate::gpu::Schedule::Monolithic,
    )?;
    proof.to_registry(&mut reg);
    let tuned = crate::tune::search(
        BASELINE_WIDTH,
        BASELINE_WIDTH,
        ctx.device(),
        ctx.cpu(),
        crate::tune::SearchMode::Guided,
    )?;
    tuned.to_registry(&mut reg);
    Ok(reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuPipeline;
    use crate::params::SharpnessParams;
    use imagekit::generate;
    use simgpu::context::Context;

    fn telemetry(cfg: OptConfig, w: usize) -> FrameTelemetry {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let pipe = GpuPipeline::new(ctx, SharpnessParams::default(), cfg);
        let img = generate::natural(w, w, 7);
        pipe.run_with_telemetry(&img).unwrap().1
    }

    #[test]
    fn vectorized_sobel_loads_match_paper_claim() {
        let t = telemetry(OptConfig::all(), 64);
        let sobel = t.kernel("sobel_vec4").expect("vec4 sobel dispatched");
        // §V.D: one vload4 of 4 pixels + two row reloads → 4.5 loads/pixel.
        let loads = sobel.loads_per_source_pixel(t.pixels());
        assert!((loads - 4.5).abs() < 0.01, "loads/px {loads}");
        assert!(loads <= 4.6);
        assert!(sobel.vector_fraction() > 0.5);
    }

    #[test]
    fn naive_sobel_loads_match_paper_claim() {
        let t = telemetry(OptConfig::none(), 64);
        let sobel = t.kernel("sobel").expect("scalar sobel dispatched");
        // 8 loads per body pixel; border pixels load less, so the
        // per-source-pixel figure sits just under 8 and well above 7.5.
        let loads = sobel.loads_per_source_pixel(t.pixels());
        assert!((7.5..8.0).contains(&loads), "loads/px {loads}");
        assert_eq!(sobel.vector_fraction(), 0.0);
        assert_eq!(t.sobel_loads_per_source_pixel(), Some(loads));
    }

    #[test]
    fn lane_totals_sum_to_simulated_time() {
        for cfg in [OptConfig::none(), OptConfig::all()] {
            let t = telemetry(cfg, 64);
            let lanes = t.upload_s + t.compute_s + t.download_s;
            assert!((lanes - t.simulated_s).abs() < 1e-12);
            assert!(t.commands > 0);
            assert!(!t.kernels.is_empty());
        }
    }

    #[test]
    fn derived_metrics_are_sane() {
        let t = telemetry(OptConfig::all(), 64);
        for k in &t.kernels {
            assert!(k.dispatches >= 1, "{}", k.name);
            assert!(k.seconds > 0.0, "{}", k.name);
            let vf = k.vector_fraction();
            assert!((0.0..=1.0).contains(&vf), "{} vec {vf}", k.name);
            assert!(
                (0.0..=1.0).contains(&k.occupancy),
                "{} occ {}",
                k.name,
                k.occupancy
            );
            // Achieved bandwidth can't exceed peak: the model charges at
            // least bytes/bw for the memory phase of each dispatch.
            let frac = k.bandwidth_fraction(&DeviceSpec::firepro_w8000());
            assert!(frac <= 1.0 + 1e-9, "{} bw frac {frac}", k.name);
        }
    }

    #[test]
    fn registry_export_covers_every_kernel() {
        let t = telemetry(OptConfig::all(), 64);
        let mut reg = MetricsRegistry::new();
        t.to_registry(&mut reg);
        assert!(reg.gauge("frame.simulated_s") > 0.0);
        assert_eq!(reg.gauge("frame.width"), 64.0);
        for k in &t.kernels {
            let name = format!("kernel.{}.dispatches", k.name);
            assert_eq!(reg.counter(&name), k.dispatches, "{name}");
        }
        // The JSONL export parses back line-for-line.
        for line in reg.to_jsonl().lines() {
            assert!(simgpu::metrics::parse_jsonl_line(line).is_some(), "{line}");
        }
    }

    #[test]
    fn efficiency_table_mentions_each_kernel() {
        let t = telemetry(OptConfig::all(), 64);
        let table = t.efficiency_table();
        assert!(table.contains("loads/px"));
        for k in &t.kernels {
            assert!(table.contains(&*k.name), "{}", k.name);
        }
        assert!(table.contains("lanes:"));
    }

    #[test]
    fn baseline_configs_are_the_cumulative_ladder() {
        let cfgs = baseline_configs();
        assert_eq!(cfgs.len(), 5);
        assert_eq!(cfgs[0].0, "step0_base");
        assert_eq!(cfgs[0].1, OptConfig::none());
        assert_eq!(cfgs[4].1, OptConfig::all());
        // Slugs are filename-safe.
        for (slug, _) in &cfgs {
            assert!(slug.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }
}
