//! Autotuning of the hardware-dependent choices the paper "tested in
//! advance": the border CPU/GPU crossover (Fig. 17), the reduction
//! stage-2 host/device threshold, and the reduction unrolling strategy
//! (Fig. 15).
//!
//! The paper hard-codes these after manual measurement; this module
//! automates the measurement against whatever device the context models,
//! so re-targeting the pipeline to another [`DeviceSpec`] re-derives them.
//!
//! [`DeviceSpec`]: simgpu::device::DeviceSpec

use simgpu::context::Context;

use crate::gpu::ablate;
use crate::gpu::kernels::reduction::{ReductionStrategy, ELEMS_PER_GROUP};
use crate::gpu::opts::Tuning;

/// Finds the smallest square-image width (among `candidates`, ascending)
/// at which the GPU border beats the CPU border; returns
/// `usize::MAX`-capped fallback of the largest candidate + step if the GPU
/// never wins.
pub fn tune_border_crossover(ctx: &Context, candidates: &[usize]) -> usize {
    for &w in candidates {
        let t_cpu = ablate::border_cpu_time(ctx, w, w);
        let t_gpu = ablate::border_gpu_time(ctx, w, w);
        if t_gpu <= t_cpu {
            return w;
        }
    }
    candidates.last().map(|&w| w * 2).unwrap_or(usize::MAX)
}

/// Picks the fastest reduction tail strategy for `n`-element inputs.
pub fn tune_reduction_strategy(ctx: &Context, n: usize) -> ReductionStrategy {
    let strategies = [
        ReductionStrategy::NoUnroll,
        ReductionStrategy::UnrollOne,
        ReductionStrategy::UnrollTwo,
    ];
    let mut best = ReductionStrategy::UnrollOne;
    let mut best_t = f64::INFINITY;
    for s in strategies {
        let t = ablate::reduction_gpu_time(ctx, n, s, usize::MAX);
        if t < best_t {
            best_t = t;
            best = s;
        }
    }
    best
}

/// Finds a partial-count threshold above which finishing the reduction on
/// the device beats reading partials back and summing on the host.
/// Probes doubling input sizes and returns the partial count at the first
/// size where the device stage 2 wins.
pub fn tune_stage2_threshold(ctx: &Context) -> usize {
    let mut n: usize = 256 * 256;
    while n <= 4096 * 4096 {
        let groups = n.div_ceil(ELEMS_PER_GROUP);
        let t_host = ablate::reduction_gpu_time(ctx, n, ReductionStrategy::UnrollOne, usize::MAX);
        let t_dev = ablate::reduction_gpu_time(ctx, n, ReductionStrategy::UnrollOne, 0);
        if t_dev < t_host {
            return groups.saturating_sub(1);
        }
        n *= 4;
    }
    usize::MAX
}

/// Full autotune pass: derives a [`Tuning`] for the context's device.
pub fn autotune(ctx: &Context) -> Tuning {
    let candidates: Vec<usize> = (1..=32).map(|k| k * 64).collect();
    Tuning {
        reduction_strategy: tune_reduction_strategy(ctx, 2048 * 2048),
        stage2_gpu_threshold: tune_stage2_threshold(ctx),
        border_gpu_min_width: tune_border_crossover(ctx, &candidates),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgpu::device::DeviceSpec;

    fn ctx() -> Context {
        Context::new(DeviceSpec::firepro_w8000())
    }

    #[test]
    fn reduction_strategy_is_unroll_one_on_w8000() {
        // Fig. 15's conclusion.
        assert_eq!(
            tune_reduction_strategy(&ctx(), 2048 * 2048),
            ReductionStrategy::UnrollOne
        );
    }

    #[test]
    fn border_crossover_is_finite_and_plausible() {
        let candidates: Vec<usize> = (1..=32).map(|k| k * 64).collect();
        let x = tune_border_crossover(&ctx(), &candidates);
        // Fig. 17 reports 768 on the W8000; accept the right order of
        // magnitude from the model.
        assert!((256..=2048).contains(&x), "crossover {x}");
    }

    #[test]
    fn autotune_produces_usable_tuning() {
        let t = autotune(&ctx());
        assert!(t.border_gpu_min_width >= 64);
        assert_eq!(t.reduction_strategy, ReductionStrategy::UnrollOne);
    }
}
