//! Autotuning of the hardware-dependent choices the paper "tested in
//! advance": the border CPU/GPU crossover (Fig. 17), the reduction
//! stage-2 host/device threshold, and the reduction unrolling strategy
//! (Fig. 15) — plus the band height of the cache-blocked megapass
//! schedule, which depends on the *host* cache hierarchy rather than the
//! simulated device.
//!
//! The paper hard-codes these after manual measurement; this module
//! automates the derivation against whatever device the context models,
//! so re-targeting the pipeline to another [`DeviceSpec`] re-derives
//! them. Since PR 10 the probes are evaluated through the closed-form
//! models in [`crate::tune`] — bit-identical to the executed
//! [`crate::gpu::ablate`] probes they replaced (a test below holds the
//! two in lockstep) but microseconds per candidate, so autotuning costs
//! nothing at startup.
//!
//! [`DeviceSpec`]: simgpu::device::DeviceSpec

use std::sync::OnceLock;

use simgpu::context::Context;

use crate::gpu::kernels::reduction::{ReductionStrategy, ELEMS_PER_GROUP};
use crate::gpu::opts::Tuning;
use crate::tune;

/// Finds the smallest square-image width (among `candidates`, ascending)
/// at which the GPU border beats the CPU border; returns
/// `usize::MAX`-capped fallback of the largest candidate + step if the GPU
/// never wins.
pub fn tune_border_crossover(ctx: &Context, candidates: &[usize]) -> usize {
    for &w in candidates {
        let t_cpu = tune::border_cpu_model(ctx.device(), ctx.cpu(), w, w);
        let t_gpu = tune::border_gpu_model(ctx.device(), w, w);
        if t_gpu <= t_cpu {
            return w;
        }
    }
    candidates.last().map(|&w| w * 2).unwrap_or(usize::MAX)
}

/// Picks the fastest reduction tail strategy for `n`-element inputs.
pub fn tune_reduction_strategy(ctx: &Context, n: usize) -> ReductionStrategy {
    let strategies = [
        ReductionStrategy::NoUnroll,
        ReductionStrategy::UnrollOne,
        ReductionStrategy::UnrollTwo,
    ];
    let mut best = ReductionStrategy::UnrollOne;
    let mut best_t = f64::INFINITY;
    for s in strategies {
        let t = tune::reduction_gpu_model(ctx.device(), ctx.cpu(), n, s, usize::MAX);
        if t < best_t {
            best_t = t;
            best = s;
        }
    }
    best
}

/// Finds a partial-count threshold above which finishing the reduction on
/// the device beats reading partials back and summing on the host.
/// Probes input sizes quadrupling from 256² to 4096² and returns the
/// partial count at the first size where the device stage 2 wins.
pub fn tune_stage2_threshold(ctx: &Context) -> usize {
    let mut n: usize = 256 * 256;
    while n <= 4096 * 4096 {
        let groups = n.div_ceil(ELEMS_PER_GROUP);
        let (dev, cpu) = (ctx.device(), ctx.cpu());
        let t_host =
            tune::reduction_gpu_model(dev, cpu, n, ReductionStrategy::UnrollOne, usize::MAX);
        let t_dev = tune::reduction_gpu_model(dev, cpu, n, ReductionStrategy::UnrollOne, 0);
        if t_dev < t_host {
            return groups.saturating_sub(1);
        }
        n *= 4;
    }
    usize::MAX
}

/// Bytes of the largest data cache the host advertises, read once from
/// `/sys/devices/system/cpu/cpu0/cache` (the usual Linux sysfs layout);
/// falls back to 8 MiB when the hierarchy cannot be read.
pub fn detected_cache_bytes() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| read_cache_bytes().unwrap_or(8 << 20))
}

fn read_cache_bytes() -> Option<usize> {
    let base = std::path::Path::new("/sys/devices/system/cpu/cpu0/cache");
    let mut best = 0usize;
    for entry in std::fs::read_dir(base).ok()? {
        let dir = entry.ok()?.path();
        let is_data = std::fs::read_to_string(dir.join("type"))
            .map(|t| matches!(t.trim(), "Data" | "Unified"))
            .unwrap_or(false);
        if !is_data {
            continue;
        }
        let size = std::fs::read_to_string(dir.join("size")).ok()?;
        let size = size.trim();
        let bytes = if let Some(k) = size.strip_suffix('K') {
            k.parse::<usize>().ok()? << 10
        } else if let Some(m) = size.strip_suffix('M') {
            m.parse::<usize>().ok()? << 20
        } else {
            size.parse::<usize>().ok()?
        };
        best = best.max(bytes);
    }
    (best > 0).then_some(best)
}

/// Rows per band for the cache-blocked megapass on images of device row
/// stride `ws`: sized so one band's working set — about six f32 streams of
/// `ws` elements each (source, up, pEdge, final, plus the down band and
/// loop slack) — fills roughly half the detected last-level cache, leaving
/// the other half for everything else. Rounded down to whole 16-row
/// work-group rows and clamped to a sane range.
pub fn band_rows_for(ws: usize) -> usize {
    const STREAMS: usize = 6;
    let budget = detected_cache_bytes() / 2;
    let rows = budget / (STREAMS * ws.max(1) * 4);
    (rows / 16 * 16).clamp(16, 4096)
}

/// Wall-clock self-check for the band height: times a few frames of each
/// candidate (the cache-derived height, half, and double) on the given
/// pipeline and returns the fastest. This is the one tuner that measures
/// *host* time, not simulated time — banding is invisible to the virtual
/// clock by design.
///
/// # Errors
/// On unsupported shapes or invalid parameters.
pub fn tune_band_rows(pipe: &crate::gpu::GpuPipeline, w: usize, h: usize) -> Result<usize, String> {
    use crate::gpu::megapass::Schedule;
    let base = band_rows_for(crate::params::device_stride(w));
    let img = imagekit::generate::natural(w, h, 42);
    let mut best = base;
    let mut best_t = f64::INFINITY;
    let mut probed = [0usize; 3];
    // `base` is already clamped to [16, 4096]; the doubled probe must
    // respect the same ceiling (and duplicates are skipped, so a base of
    // 4096 probes two candidates, not the same one twice).
    for (i, cand) in [base / 2, base, (base * 2).min(4096)]
        .into_iter()
        .enumerate()
    {
        if cand < 16 || probed[..i].contains(&cand) {
            continue;
        }
        probed[i] = cand;
        let banded = pipe.clone().with_schedule(Schedule::Banded(cand));
        let mut plan = banded.prepared(w, h)?;
        let mut out = vec![0.0f32; w * h];
        plan.run_into(&img, &mut out)?; // warm the plan and pool
        let t0 = std::time::Instant::now();
        for _ in 0..2 {
            plan.run_into(&img, &mut out)?;
        }
        let t = t0.elapsed().as_secs_f64();
        if t < best_t {
            best_t = t;
            best = cand;
        }
    }
    Ok(best)
}

/// Full autotune pass: derives a [`Tuning`] for the context's device.
pub fn autotune(ctx: &Context) -> Tuning {
    let candidates: Vec<usize> = (1..=32).map(|k| k * 64).collect();
    Tuning {
        reduction_strategy: tune_reduction_strategy(ctx, 2048 * 2048),
        stage2_gpu_threshold: tune_stage2_threshold(ctx),
        border_gpu_min_width: tune_border_crossover(ctx, &candidates),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgpu::device::DeviceSpec;

    fn ctx() -> Context {
        Context::new(DeviceSpec::firepro_w8000())
    }

    #[test]
    fn reduction_strategy_is_unroll_one_on_w8000() {
        // Fig. 15's conclusion.
        assert_eq!(
            tune_reduction_strategy(&ctx(), 2048 * 2048),
            ReductionStrategy::UnrollOne
        );
    }

    #[test]
    fn border_crossover_is_finite_and_plausible() {
        let candidates: Vec<usize> = (1..=32).map(|k| k * 64).collect();
        let x = tune_border_crossover(&ctx(), &candidates);
        // Fig. 17 reports 768 on the W8000; accept the right order of
        // magnitude from the model.
        assert!((256..=2048).contains(&x), "crossover {x}");
    }

    #[test]
    fn autotune_produces_usable_tuning() {
        let t = autotune(&ctx());
        assert!(t.border_gpu_min_width >= 64);
        assert_eq!(t.reduction_strategy, ReductionStrategy::UnrollOne);
    }

    /// The closed-form probe models must track the executed ablation
    /// probes bit for bit — this is what licenses replacing execution
    /// with the model in the tuners above.
    #[test]
    fn model_probes_match_executed_ablation_probes_bit_for_bit() {
        use crate::gpu::ablate;
        use crate::tune;
        for dev in [
            DeviceSpec::firepro_w8000(),
            DeviceSpec::midrange_gpu(),
            DeviceSpec::apu(),
        ] {
            let ctx = Context::new(dev);
            let (d, c) = (ctx.device().clone(), ctx.cpu().clone());
            for n in [1024usize, 256 * 256, 1024 * 1024 + 7] {
                for s in [
                    ReductionStrategy::NoUnroll,
                    ReductionStrategy::UnrollOne,
                    ReductionStrategy::UnrollTwo,
                ] {
                    for thr in [usize::MAX, 0] {
                        assert_eq!(
                            ablate::reduction_gpu_time(&ctx, n, s, thr).to_bits(),
                            tune::reduction_gpu_model(&d, &c, n, s, thr).to_bits(),
                            "reduction gpu probe n={n} {s:?} thr={thr} on {}",
                            d.name
                        );
                    }
                }
                assert_eq!(
                    ablate::reduction_cpu_time(&ctx, n).to_bits(),
                    tune::reduction_cpu_model(&d, &c, n).to_bits(),
                    "reduction cpu probe n={n} on {}",
                    d.name
                );
            }
            for (w, h) in [(64, 64), (256, 192), (768, 768), (1001, 701)] {
                assert_eq!(
                    ablate::border_gpu_time(&ctx, w, h).to_bits(),
                    tune::border_gpu_model(&d, w, h).to_bits(),
                    "border gpu probe {w}x{h} on {}",
                    d.name
                );
                assert_eq!(
                    ablate::border_cpu_time(&ctx, w, h).to_bits(),
                    tune::border_cpu_model(&d, &c, w, h).to_bits(),
                    "border cpu probe {w}x{h} on {}",
                    d.name
                );
            }
        }
    }
}
