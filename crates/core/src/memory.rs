//! Device-memory planning for the GPU pipeline.
//!
//! The W8000 carries 4 GiB; a production integration needs to know — per
//! optimization configuration — how much device memory a frame costs and
//! what the largest processable frame is. Kernel fusion (Section V-B)
//! shows up directly here: it removes the pError and preliminary matrices
//! from the footprint, not just their traffic.

use crate::gpu::kernels::reduction::stage1_groups;
use crate::gpu::opts::OptConfig;
use crate::params::{device_stride, SCALE};

/// Bytes of device memory one `w × h` frame requires under `opts`.
///
/// Counts every buffer the pipeline allocates: padded source (plus the
/// raw original in the base transfer mode), downscaled, upscaled, pEdge,
/// final, the reduction partials when the reduction runs on the device,
/// and the pError/preliminary intermediates when fusion is off. Device
/// intermediates live at the vec4-aligned row stride `device_stride(w)`,
/// so widths not a multiple of 4 cost slightly more than `w * h`.
pub fn device_bytes_required(w: usize, h: usize, opts: &OptConfig) -> u64 {
    let n = (w * h) as u64;
    let ws = device_stride(w);
    let ns = (ws * h) as u64;
    let padded = ((ws + 2) * (h + 2)) as u64;
    let down = (w.div_ceil(SCALE) * h.div_ceil(SCALE)) as u64;
    let mut elems = padded + down + ns /* up */ + ns /* pEdge */ + ns /* final */;
    if !opts.data_transfer {
        elems += n; // raw original uploaded alongside the padded matrix
    }
    if !opts.kernel_fusion {
        elems += 2 * ns; // pError + preliminary intermediates
    }
    if opts.reduction_gpu {
        elems += stage1_groups(ws * h) as u64 + 1;
    }
    elems * 4
}

/// Largest square frame width (a multiple of 4) whose pipeline footprint
/// fits in `device_bytes` under `opts`. Returns `None` when not even the
/// 16×16 minimum fits.
pub fn max_square_width(device_bytes: u64, opts: &OptConfig) -> Option<usize> {
    let mut best = None;
    let mut w = 16usize;
    // Footprint is monotone in w; galloping + refinement keeps this exact
    // without probing every multiple of 4.
    while device_bytes_required(w, w, opts) <= device_bytes {
        best = Some(w);
        w *= 2;
    }
    let mut w = best?;
    loop {
        let next = w + 4;
        if device_bytes_required(next, next, opts) > device_bytes {
            return Some(w);
        }
        w = next;
    }
}

/// Frames of a `w × h` stream that fit on the device simultaneously
/// (for double-buffered streaming two are needed).
pub fn frames_resident(device_bytes: u64, w: usize, h: usize, opts: &OptConfig) -> u64 {
    let per = device_bytes_required(w, h, opts);
    device_bytes.checked_div(per).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn fusion_shrinks_footprint() {
        let unfused = OptConfig::none();
        let fused = OptConfig {
            kernel_fusion: true,
            ..OptConfig::none()
        };
        let a = device_bytes_required(1024, 1024, &unfused);
        let b = device_bytes_required(1024, 1024, &fused);
        // Fusion removes two full-size matrices.
        assert_eq!(a - b, 2 * 1024 * 1024 * 4);
    }

    #[test]
    fn data_transfer_opt_drops_the_raw_original() {
        let base = OptConfig::none();
        let dt = OptConfig {
            data_transfer: true,
            ..OptConfig::none()
        };
        let a = device_bytes_required(512, 512, &base);
        let b = device_bytes_required(512, 512, &dt);
        assert_eq!(a - b, 512 * 512 * 4);
    }

    #[test]
    fn footprint_is_monotone_in_size() {
        let opts = OptConfig::all();
        let mut prev = 0;
        for w in [16usize, 64, 256, 1024, 4096] {
            let b = device_bytes_required(w, w, &opts);
            assert!(b > prev);
            prev = b;
        }
    }

    #[test]
    fn w8000_capacity_fits_8k_frames_optimized() {
        // 4 GiB card: an 8192² f32 frame pipeline fits when fully
        // optimized (5 matrices ≈ 1.3 GiB).
        let opts = OptConfig::all();
        assert!(device_bytes_required(8192, 8192, &opts) < 4 * GIB);
        let max = max_square_width(4 * GIB, &opts).unwrap();
        assert!(max >= 8192, "max {max}");
        // The base configuration fits less.
        let max_base = max_square_width(4 * GIB, &OptConfig::none()).unwrap();
        assert!(max_base < max);
    }

    #[test]
    fn max_width_is_exact_boundary() {
        let opts = OptConfig::all();
        let w = max_square_width(64 << 20, &opts).unwrap();
        assert_eq!(w % 4, 0);
        assert!(device_bytes_required(w, w, &opts) <= 64 << 20);
        assert!(device_bytes_required(w + 4, w + 4, &opts) > 64 << 20);
    }

    #[test]
    fn tiny_budget_fits_nothing() {
        assert_eq!(max_square_width(1024, &OptConfig::all()), None);
    }

    #[test]
    fn frames_resident_counts() {
        let opts = OptConfig::all();
        let per = device_bytes_required(1024, 1024, &opts);
        assert_eq!(frames_resident(3 * per, 1024, 1024, &opts), 3);
        assert_eq!(frames_resident(per - 1, 1024, 1024, &opts), 0);
    }
}
