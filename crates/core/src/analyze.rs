//! Automated bottleneck attribution: joins the span tree, per-kernel
//! telemetry and the device cost model into a ranked "where did the time
//! go" report.
//!
//! Three verdict layers, because the repo tracks three currencies:
//!
//! * **per-kernel (simulated device)** — a roofline classification from the
//!   cost model's own decomposition: a kernel is compute-, bandwidth-,
//!   LDS- or launch-bound depending on which term of
//!   `launch + max(alu, mem, lds)` dominates, annotated with arithmetic
//!   intensity vs the device's machine balance and achieved-vs-peak
//!   fractions;
//! * **frame (simulated device)** — transfer-bound when the upload +
//!   readback lanes outweigh compute (the paper's naive-configuration
//!   diagnosis), otherwise the top kernel's verdict;
//! * **host (wall clock)** — the PR 5/6 result re-derived from first
//!   principles: the band working set (~6 f32 streams per pixel, the same
//!   estimate `autotune::band_rows_for` sizes bands with) either fits the
//!   last-level cache (compute-bound host, SIMD and banding pay off) or
//!   streams from DRAM (bandwidth-bound host, SIMD caps out).
//!
//! Everything here is **observation-only**: inputs are immutable telemetry,
//! span snapshots and device specs; nothing can perturb pixels or the
//! virtual clock. The report is exposed as `sharpen --explain`.

use std::fmt::Write as _;
use std::sync::Arc;

use simgpu::device::DeviceSpec;
use simgpu::span::{aggregate, SpanKind, SpanRecord};
use simgpu::timing::{kernel_time, GpuOpWeights};

use crate::telemetry::{FrameTelemetry, KernelMetrics};

/// Number of f32 streams a pixel of the pipeline keeps live on the host —
/// source, up, pEdge, final, the down band and loop slack. Matches the
/// working-set estimate `autotune::band_rows_for` sizes cache bands with.
pub const HOST_STREAMS: u64 = 6;

/// What limits a kernel, frame or host run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// ALU throughput limits: arithmetic intensity above machine balance.
    Compute,
    /// Global-memory bandwidth limits.
    Bandwidth,
    /// Local-memory (LDS) bandwidth limits.
    Lds,
    /// Fixed launch overhead dominates (dispatch too small).
    Launch,
    /// Host-device transfers dominate the frame.
    Transfer,
}

impl Bound {
    /// Human-readable label used in the report.
    pub fn label(self) -> &'static str {
        match self {
            Bound::Compute => "compute-bound",
            Bound::Bandwidth => "bandwidth-bound",
            Bound::Lds => "lds-bound",
            Bound::Launch => "launch-bound",
            Bound::Transfer => "transfer-bound",
        }
    }
}

/// Roofline verdict for one kernel (all dispatches of one name).
#[derive(Debug, Clone)]
pub struct KernelVerdict {
    /// Kernel name.
    pub name: Arc<str>,
    /// Simulated seconds across dispatches.
    pub seconds: f64,
    /// Fraction of the frame's simulated time (0..1).
    pub share: f64,
    /// The dominating roofline term.
    pub bound: Bound,
    /// Arithmetic intensity, ALU ops per global byte.
    pub intensity: f64,
    /// Achieved global bandwidth as a fraction of device peak (0..1).
    pub bw_fraction: f64,
    /// Achieved ALU throughput as a fraction of effective peak (0..1).
    pub alu_fraction: f64,
    /// Fraction of the kernel's time that is fixed launch overhead.
    pub launch_share: f64,
    /// Duration-weighted modeled occupancy (0..1).
    pub occupancy: f64,
}

fn classify_kernel(k: &KernelMetrics, dev: &DeviceSpec, frame_s: f64) -> KernelVerdict {
    // The decomposition terms are linear in the counters, so classifying
    // from the dispatch-merged counters is exact; the shared utilisation
    // divisor scales all three terms equally and cannot flip the argmax.
    let t = kernel_time(dev, &k.counters);
    let launch_s = k.dispatches as f64 * dev.launch_overhead_s;
    let launch_share = if k.seconds > 0.0 {
        (launch_s / k.seconds).min(1.0)
    } else {
        0.0
    };
    let bound = if launch_share > 0.5 {
        Bound::Launch
    } else if t.mem_s >= t.alu_s && t.mem_s >= t.lds_s {
        Bound::Bandwidth
    } else if t.alu_s >= t.lds_s {
        Bound::Compute
    } else {
        Bound::Lds
    };
    let alu_fraction = if k.seconds > 0.0 {
        (GpuOpWeights::default().cycles(&k.counters.ops) / dev.effective_lane_hz() / k.seconds)
            .min(1.0)
    } else {
        0.0
    };
    KernelVerdict {
        name: Arc::clone(&k.name),
        seconds: k.seconds,
        share: if frame_s > 0.0 {
            k.seconds / frame_s
        } else {
            0.0
        },
        bound,
        intensity: k.arithmetic_intensity(),
        bw_fraction: k.bandwidth_fraction(dev),
        alu_fraction,
        launch_share,
        occupancy: k.occupancy,
    }
}

/// Host-side wall-clock verdict: is the frame's working set resident in
/// the last-level cache?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostVerdict {
    /// Estimated live bytes per frame ([`HOST_STREAMS`] f32 streams).
    pub working_set_bytes: u64,
    /// Last-level cache size the verdict was made against.
    pub llc_bytes: u64,
    /// Whether the working set fits the cache.
    pub resident: bool,
    /// [`Bound::Compute`] when resident, [`Bound::Bandwidth`] when the
    /// frame streams from DRAM.
    pub bound: Bound,
}

/// Classifies the host execution of a `width`×`height` frame against an
/// LLC of `llc_bytes` (use `autotune::detected_cache_bytes()` for the
/// running machine, or pass a size explicitly for reproducible tests).
pub fn host_verdict(width: usize, height: usize, llc_bytes: usize) -> HostVerdict {
    let working_set_bytes = HOST_STREAMS * (width as u64) * (height as u64) * 4;
    let resident = working_set_bytes <= llc_bytes as u64;
    HostVerdict {
        working_set_bytes,
        llc_bytes: llc_bytes as u64,
        resident,
        bound: if resident {
            Bound::Compute
        } else {
            Bound::Bandwidth
        },
    }
}

/// Wall-clock vs simulated time of the frame span, when spans were
/// recorded.
#[derive(Debug, Clone, Copy)]
pub struct WallSim {
    /// Host wall-clock seconds of the frame span.
    pub wall_s: f64,
    /// Simulated seconds of the frame span.
    pub sim_s: f64,
}

impl WallSim {
    /// Wall seconds per simulated second (how much faster/slower the host
    /// executes the frame than the modeled device would).
    pub fn ratio(&self) -> f64 {
        if self.sim_s > 0.0 {
            self.wall_s / self.sim_s
        } else {
            0.0
        }
    }
}

/// One phase row of the report: a depth-1 span aggregate.
#[derive(Debug, Clone)]
pub struct PhaseShare {
    /// Phase name (`upload`, `sobel`, `megapass:A`, ...).
    pub name: String,
    /// Simulated seconds aggregated over the phase's spans.
    pub sim_s: f64,
    /// Host wall-clock seconds aggregated over the phase's spans.
    pub wall_s: f64,
    /// Fraction of the frame's simulated time (0..1).
    pub share: f64,
}

/// The full bottleneck attribution for one frame.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Frame width.
    pub width: usize,
    /// Frame height.
    pub height: usize,
    /// Device the frame ran on (name used in the report header).
    pub device: &'static str,
    /// Total simulated seconds.
    pub simulated_s: f64,
    /// Device machine balance: effective ALU ops per global byte at peak.
    pub machine_balance: f64,
    /// Simulated seconds in host↔device transfers (upload + readback).
    pub transfer_s: f64,
    /// Transfer fraction of the frame (0..1).
    pub transfer_share: f64,
    /// Frame-level verdict.
    pub frame_bound: Bound,
    /// Per-kernel verdicts, ranked by simulated seconds, largest first.
    pub kernels: Vec<KernelVerdict>,
    /// Host-side wall-clock verdict.
    pub host: HostVerdict,
    /// Wall vs simulated time of the frame span, when spans were recorded.
    pub wall_sim: Option<WallSim>,
    /// Depth-1 phase aggregates from the span tree, in tree order.
    pub phases: Vec<PhaseShare>,
}

/// Builds the attribution report from one frame's telemetry, its span
/// snapshot (may be empty), the device it ran on, and the host LLC size
/// to judge wall-clock behaviour against.
pub fn explain(
    tel: &FrameTelemetry,
    spans: &[SpanRecord],
    dev: &DeviceSpec,
    llc_bytes: usize,
) -> Explanation {
    let mut kernels: Vec<KernelVerdict> = tel
        .kernels
        .iter()
        .map(|k| classify_kernel(k, dev, tel.simulated_s))
        .collect();
    kernels.sort_by(|a, b| b.seconds.total_cmp(&a.seconds));

    let transfer_s = tel.upload_s + tel.download_s;
    let transfer_share = if tel.simulated_s > 0.0 {
        transfer_s / tel.simulated_s
    } else {
        0.0
    };
    let frame_bound = if transfer_share > 0.5 {
        Bound::Transfer
    } else {
        kernels.first().map_or(Bound::Compute, |k| k.bound)
    };

    let wall_sim = spans
        .iter()
        .find(|s| s.kind == SpanKind::Frame)
        .map(|f| WallSim {
            wall_s: f.wall_s(),
            sim_s: f.sim_s(),
        });
    let phases = aggregate(spans)
        .into_iter()
        .filter(|a| a.kind == SpanKind::Phase && a.path.matches('/').count() == 1)
        .map(|a| PhaseShare {
            share: if tel.simulated_s > 0.0 {
                a.sim_s / tel.simulated_s
            } else {
                0.0
            },
            name: a.path.split('/').next_back().unwrap_or("").to_string(),
            sim_s: a.sim_s,
            wall_s: a.wall_s,
        })
        .collect();

    Explanation {
        width: tel.width,
        height: tel.height,
        device: dev.name,
        simulated_s: tel.simulated_s,
        machine_balance: dev.effective_lane_hz() / dev.mem_bw,
        transfer_s,
        transfer_share,
        frame_bound,
        kernels,
        host: host_verdict(tel.width, tel.height, llc_bytes),
        wall_sim,
        phases,
    }
}

impl Explanation {
    /// The `n` largest kernel verdicts (all of them if fewer).
    pub fn top(&self, n: usize) -> &[KernelVerdict] {
        &self.kernels[..n.min(self.kernels.len())]
    }

    /// Renders the ranked report `sharpen --explain` prints.
    pub fn render(&self, top_n: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bottleneck report: {}x{} frame on {} (machine balance {:.1} op/B)",
            self.width, self.height, self.device, self.machine_balance,
        );
        let _ = writeln!(
            out,
            "frame: {} — transfers {:.1}% of {:.3} simulated ms",
            self.frame_bound.label(),
            self.transfer_share * 100.0,
            self.simulated_s * 1e3,
        );
        let _ = writeln!(
            out,
            "host:  working set {:.1} MiB vs LLC {:.1} MiB → {} ({} wall-clock)",
            self.host.working_set_bytes as f64 / (1 << 20) as f64,
            self.host.llc_bytes as f64 / (1 << 20) as f64,
            if self.host.resident {
                "LLC-resident"
            } else {
                "DRAM-streaming"
            },
            self.host.bound.label(),
        );
        if let Some(ws) = &self.wall_sim {
            let _ = writeln!(
                out,
                "wall/sim: {:.3} ms wall / {:.3} ms simulated = {:.2}x",
                ws.wall_s * 1e3,
                ws.sim_s * 1e3,
                ws.ratio(),
            );
        }
        let name_w = self
            .kernels
            .iter()
            .map(|k| k.name.chars().count())
            .max()
            .unwrap_or(6)
            .max(6);
        let _ = writeln!(
            out,
            "rank {:<name_w$} {:>9} {:>6} {:>15} {:>7} {:>7} {:>7} {:>5}",
            "kernel", "sim µs", "share", "verdict", "AI op/B", "bw/peak", "alu/pk", "occ",
        );
        for (i, k) in self.top(top_n).iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>4} {:<name_w$} {:>9.1} {:>5.1}% {:>15} {:>7.2} {:>6.1}% {:>6.1}% {:>5.2}",
                i + 1,
                k.name,
                k.seconds * 1e6,
                k.share * 100.0,
                k.bound.label(),
                k.intensity,
                k.bw_fraction * 100.0,
                k.alu_fraction * 100.0,
                k.occupancy,
            );
        }
        if !self.phases.is_empty() {
            let _ = write!(out, "phases:");
            for p in &self.phases {
                let _ = write!(out, " {} {:.1}%", p.name, p.share * 100.0);
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{GpuPipeline, OptConfig, Schedule};
    use crate::params::SharpnessParams;
    use imagekit::generate;
    use simgpu::context::Context;

    /// The container-class LLC the PR 5/6 diagnoses were made on.
    const LLC: usize = 105 << 20;

    fn observed(cfg: OptConfig, w: usize) -> (FrameTelemetry, Vec<SpanRecord>) {
        let ctx = Context::new(DeviceSpec::firepro_w8000()).with_spans();
        let pipe = GpuPipeline::new(ctx, SharpnessParams::default(), cfg);
        let mut plan = pipe.prepared(w, w).unwrap();
        let img = generate::natural(w, w, 7);
        let mut out = vec![0.0f32; w * w];
        plan.run_into(&img, &mut out).unwrap();
        (plan.telemetry(), plan.spans())
    }

    #[test]
    fn naive_config_is_transfer_bound_and_opts_cut_transfer_time() {
        // The paper's base-version diagnosis: at 1024² the unoptimized
        // configuration spends most of its simulated frame moving data.
        let (naive, spans) = observed(OptConfig::none(), 1024);
        let e = explain(&naive, &spans, &DeviceSpec::firepro_w8000(), LLC);
        assert_eq!(e.frame_bound, Bound::Transfer, "{}", e.render(8));
        assert!(e.transfer_share > 0.5, "share {}", e.transfer_share);
        // And the transfer optimization's claim in absolute terms: the
        // optimized ladder moves strictly less transfer time per frame.
        let (opt, _) = observed(OptConfig::all(), 1024);
        let eo = explain(&opt, &[], &DeviceSpec::firepro_w8000(), LLC);
        assert!(
            eo.transfer_s < e.transfer_s,
            "optimized transfers {} s vs naive {} s",
            eo.transfer_s,
            e.transfer_s
        );
    }

    #[test]
    fn host_is_compute_bound_at_1024_and_bandwidth_bound_at_4096() {
        // PR 5/6: the 105 MiB LLC holds a 1024² frame's ~24 MiB working
        // set (banding parity, SIMD pays), while 4096² needs ~384 MiB and
        // streams from DRAM (SIMD capped at 1.21x).
        let h1k = host_verdict(1024, 1024, LLC);
        assert!(h1k.resident);
        assert_eq!(h1k.bound, Bound::Compute);
        let h4k = host_verdict(4096, 4096, LLC);
        assert!(!h4k.resident);
        assert_eq!(h4k.bound, Bound::Bandwidth);
        // The vec4 Sobel keeps ≤4.6 loads/px (§V.D), so residency — not
        // redundant traffic — is what decides the host verdict.
        let (tel, _) = observed(OptConfig::all(), 64);
        let loads = tel.sobel_loads_per_source_pixel().unwrap();
        assert!(loads <= 4.6, "loads/px {loads}");
    }

    #[test]
    fn kernels_rank_by_simulated_seconds() {
        let (tel, spans) = observed(OptConfig::all(), 256);
        let e = explain(&tel, &spans, &DeviceSpec::firepro_w8000(), LLC);
        assert!(!e.kernels.is_empty());
        for pair in e.kernels.windows(2) {
            assert!(pair[0].seconds >= pair[1].seconds);
        }
        assert_eq!(e.top(3).len(), 3.min(e.kernels.len()));
        // Shares and fractions are sane.
        for k in &e.kernels {
            assert!((0.0..=1.0).contains(&k.share), "{} {}", k.name, k.share);
            assert!(k.bw_fraction <= 1.0 + 1e-9, "{}", k.name);
            assert!(k.alu_fraction <= 1.0, "{}", k.name);
        }
    }

    #[test]
    fn verdict_tracks_the_cost_model_decomposition() {
        let dev = DeviceSpec::firepro_w8000();
        let (tel, _) = observed(OptConfig::all(), 256);
        for k in &tel.kernels {
            let v = classify_kernel(k, &dev, tel.simulated_s);
            let t = kernel_time(&dev, &k.counters);
            match v.bound {
                Bound::Bandwidth => assert!(t.mem_s >= t.alu_s && t.mem_s >= t.lds_s),
                Bound::Compute => assert!(t.alu_s >= t.mem_s || v.launch_share <= 0.5),
                Bound::Lds => assert!(t.lds_s > t.alu_s && t.lds_s > t.mem_s),
                Bound::Launch => assert!(v.launch_share > 0.5),
                Bound::Transfer => panic!("kernels are never transfer-bound"),
            }
            // A kernel whose intensity is below machine balance and that
            // isn't launch-dominated must be memory-limited.
            if v.intensity < dev.effective_lane_hz() / dev.mem_bw && v.launch_share <= 0.5 {
                assert_ne!(v.bound, Bound::Compute, "{}", k.name);
            }
        }
    }

    #[test]
    fn report_renders_phases_and_wall_sim_when_spans_present() {
        let (tel, spans) = observed(OptConfig::all(), 64);
        let e = explain(&tel, &spans, &DeviceSpec::firepro_w8000(), LLC);
        assert!(e.wall_sim.is_some());
        assert!(!e.phases.is_empty());
        let text = e.render(5);
        assert!(text.contains("bottleneck report: 64x64"), "{text}");
        assert!(text.contains("frame:"), "{text}");
        assert!(text.contains("host:"), "{text}");
        assert!(text.contains("wall/sim:"), "{text}");
        assert!(text.contains("phases:"), "{text}");
        assert!(text.contains("sobel"), "{text}");
        // Without spans the report still renders, minus the span rows.
        let e2 = explain(&tel, &[], &DeviceSpec::firepro_w8000(), LLC);
        assert!(e2.wall_sim.is_none());
        assert!(e2.phases.is_empty());
        assert!(!e2.render(5).contains("wall/sim:"));
    }

    #[test]
    fn banded_explanation_sees_megapass_phases() {
        let ctx = Context::new(DeviceSpec::firepro_w8000()).with_spans();
        let pipe = GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all())
            .with_schedule(Schedule::Banded(32));
        let mut plan = pipe.prepared(128, 128).unwrap();
        let img = generate::natural(128, 128, 5);
        let mut out = vec![0.0f32; 128 * 128];
        plan.run_into(&img, &mut out).unwrap();
        let e = explain(
            &plan.telemetry(),
            &plan.spans(),
            &DeviceSpec::firepro_w8000(),
            LLC,
        );
        let names: Vec<&str> = e.phases.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"megapass:A"), "{names:?}");
        assert!(names.contains(&"megapass:B"), "{names:?}");
    }
}
