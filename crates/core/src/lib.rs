//! # sharpness-core — the ICPP 2015 sharpness pipeline
//!
//! Reproduction of the algorithm and optimizations from *Optimizing Image
//! Sharpening Algorithm on GPU* (Fan, Jia, Zhang, An, Cao — ICPP 2015).
//!
//! The sharpness algorithm (paper Section III) processes a brightness
//! matrix through: **downscale** (4×4 block means) → **upscale** (border
//! interpolation + `P·D·Pᵀ` body blocks) → **pError** (original −
//! upscaled) → **Sobel** (`|Gx|+|Gy|`) → **reduction** (pEdge mean) →
//! **strength + preliminary** (adaptive edge amplification, the `pow`-heavy
//! stage) → **overshoot control** (clamping against the local 3×3
//! envelope).
//!
//! Two implementations share the exact per-pixel math in [`math`]:
//!
//! * [`cpu::CpuPipeline`] — the serial "well-optimized CPU version"
//!   baseline, timed against a Core i5-3470 model;
//! * [`gpu::GpuPipeline`] — the OpenCL-style port running on the simulated
//!   AMD FirePro W8000 of the [`simgpu`] crate, configurable with
//!   [`gpu::OptConfig`] to reproduce the paper's base version and every
//!   step of its optimization ladder (Section V): data-transfer
//!   optimization, kernel fusion, GPU tree reduction with wavefront
//!   unrolling, vectorization for data locality, border CPU/GPU selection,
//!   and the "other" micro-optimizations.
//!
//! ```
//! use imagekit::generate;
//! use sharpness_core::cpu::CpuPipeline;
//! use sharpness_core::gpu::{GpuPipeline, OptConfig};
//! use sharpness_core::params::SharpnessParams;
//! use simgpu::prelude::{Context, DeviceSpec};
//!
//! let img = generate::natural(256, 256, 7);
//! let params = SharpnessParams::default();
//! let cpu = CpuPipeline::new(params).run(&img).unwrap();
//! let ctx = Context::new(DeviceSpec::firepro_w8000());
//! let gpu = GpuPipeline::new(ctx, params, OptConfig::all()).run(&img).unwrap();
//! assert!(gpu.output.max_abs_diff(&cpu.output) < 0.05);
//! assert!(gpu.total_s < cpu.total_s); // simulated seconds: GPU wins at 256²+
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod autotune;
pub mod color;
pub mod cpu;
pub mod gpu;
pub mod math;
pub mod memory;
pub mod params;
pub mod report;
pub mod service;
pub mod telemetry;
pub mod tune;

pub use cpu::CpuPipeline;
pub use gpu::kernels::simd;
pub use gpu::{GpuPipeline, OptConfig, Tuning};
pub use params::SharpnessParams;
pub use report::RunReport;
