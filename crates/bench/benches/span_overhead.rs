//! Wall-clock cost of hierarchical span tracing (not a figure from the
//! paper — spans are observation-only by construction, so the only number
//! that can move is host frames/s).
//!
//! For each square size and schedule the bench times the same persistent
//! plan with spans disabled (the default) and enabled
//! (`Context::with_spans()`), and reports the on/off frames-per-second
//! ratio. The acceptance bar is ≤2% overhead (ratio ≥ 0.98). Results land
//! in `SO_OUT` (default the committed `baselines/BENCH_8.json`); the
//! `speedup_vs_monolithic` column holds the spans-on/spans-off ratio for
//! the row's schedule (1.0 rows are the spans-off references).
//!
//! Run with `cargo bench --bench span_overhead`. Environment knobs:
//! `SO_SIZES` (default `1024,4096`), `SO_FRAMES` (default 3),
//! `SO_OUT` (output path).

use std::time::Instant;

use sharpness_bench::benchjson::{self, BenchRow};
use sharpness_bench::workload;
use sharpness_core::gpu::{GpuPipeline, OptConfig, Schedule};
use sharpness_core::params::SharpnessParams;
use simgpu::context::Context;
use simgpu::device::DeviceSpec;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_sizes() -> Vec<usize> {
    std::env::var("SO_SIZES")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1024, 4096])
}

/// Times `frames` runs of a persistent plan, best of `REPS` repetitions
/// (max frames/s — the least-disturbed repetition, since the only noise
/// source on a quiet host is interference slowing a rep down).
fn measure(width: usize, frames: usize, schedule: Schedule, spans: bool) -> f64 {
    const REPS: usize = 3;
    let img = workload(width);
    let ctx = Context::new(DeviceSpec::firepro_w8000());
    let ctx = if spans { ctx.with_spans() } else { ctx };
    let pipe =
        GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all()).with_schedule(schedule);
    let mut plan = pipe.prepared(width, width).unwrap();
    let mut out = vec![0.0f32; width * width];
    plan.run_into(&img, &mut out).unwrap(); // warm-up (fills the pool)
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for _ in 0..frames {
            std::hint::black_box(plan.run_into(&img, &mut out).unwrap());
        }
        best = best.max(frames as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let sizes = env_sizes();
    let frames = env_usize("SO_FRAMES", 3);
    let out_path = std::env::var("SO_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../baselines/BENCH_8.json").to_string()
    });

    println!("span_overhead: {frames} frames per configuration, OptConfig::all()");
    let mut rows = Vec::new();
    for &width in &sizes {
        for (label, schedule) in [
            ("monolithic", Schedule::Monolithic),
            ("banded(auto)", Schedule::Banded(0)),
        ] {
            let off = measure(width, frames, schedule, false);
            let on = measure(width, frames, schedule, true);
            let ratio = on / off;
            rows.push(BenchRow::with_active_backend(
                width,
                label.to_string(),
                off,
                1.0,
            ));
            rows.push(BenchRow::with_active_backend(
                width,
                format!("{label}+spans"),
                on,
                ratio,
            ));
            println!(
                "  {width:>4}² {label:<13}: off {off:7.2} fps | on {on:7.2} fps | \
                 ratio {ratio:5.3} ({:+.2}% overhead)",
                (1.0 - ratio) * 100.0
            );
        }
    }
    benchjson::write(&out_path, "span_overhead", &rows).expect("write bench json");
    println!("wrote {out_path}");
}
