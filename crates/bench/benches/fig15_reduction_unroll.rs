//! Criterion bench for Fig. 15: the three reduction tail strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sharpness_bench::w8000;
use sharpness_core::gpu::ablate::reduction_gpu_time;
use sharpness_core::gpu::kernels::reduction::ReductionStrategy;

fn bench_fig15(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_reduction_unroll");
    group.sample_size(10);
    let ctx = w8000();
    for (name, strategy) in [
        ("unroll_one", ReductionStrategy::UnrollOne),
        ("unroll_two", ReductionStrategy::UnrollTwo),
        ("no_unroll", ReductionStrategy::NoUnroll),
    ] {
        for n in [256 * 256usize, 1024 * 1024] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                b.iter(|| reduction_gpu_time(&ctx, n, strategy, usize::MAX))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig15);
criterion_main!(benches);
