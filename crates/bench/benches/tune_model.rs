//! Wall-clock bench of the model-based schedule tuner (`core::tune`):
//! how fast the search walks the candidate space, whether the guided
//! walk lands on the exhaustive argmin, and the simulated speedup of the
//! tuned schedule over the paper's hand-tuned default — per device
//! preset and shape. The speedups and agreement flags are deterministic
//! (pure cost model); only candidates/s measures this host.
//!
//! Results land in `TM_OUT` (default the committed
//! `baselines/BENCH_10.json`) and one candidates/s series per device is
//! appended to the perf ledger (`LEDGER_OUT` override), where
//! `perf_ledger --check` gates tuner-throughput regressions like any
//! other wall-clock series.
//!
//! Run with `cargo bench -p sharpness-bench --bench tune_model`.
//! Environment knobs: `TM_SHAPES` (default `256x256,768x768,1001x701`),
//! `TM_OUT`, `LEDGER_OUT`.

use std::time::Instant;

use sharpness_bench::benchjson::{self, TuneRow};
use sharpness_bench::ledger::{self, LedgerEntry};
use sharpness_core::tune::{flags_label, search, SearchMode};
use simgpu::device::{CpuSpec, DeviceSpec};

fn env_shapes() -> Vec<(usize, usize)> {
    std::env::var("TM_SHAPES")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| {
                    let (w, h) = s.trim().split_once('x')?;
                    Some((w.parse().ok()?, h.parse().ok()?))
                })
                .collect()
        })
        .filter(|v: &Vec<(usize, usize)>| !v.is_empty())
        .unwrap_or_else(|| vec![(256, 256), (768, 768), (1001, 701)])
}

fn main() {
    let shapes = env_shapes();
    let out_path = std::env::var("TM_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../baselines/BENCH_10.json").to_string()
    });
    let presets = [
        DeviceSpec::firepro_w8000(),
        DeviceSpec::midrange_gpu(),
        DeviceSpec::apu(),
        DeviceSpec::embedded_gpu(),
        DeviceSpec::hbm_gpu(),
    ];
    let cpu = CpuSpec::core_i5_3470();

    println!(
        "tune_model: exhaustive + guided search per (device, shape), pure cost model \
         (no pipeline executions)"
    );
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for dev in &presets {
        let mut device_cands = 0usize;
        let mut device_wall = 0.0f64;
        for &(w, h) in &shapes {
            let t0 = Instant::now();
            let ex = search(w, h, dev, &cpu, SearchMode::Exhaustive).expect("exhaustive search");
            let wall = t0.elapsed().as_secs_f64();
            let gd = search(w, h, dev, &cpu, SearchMode::Guided).expect("guided search");
            let agree = ex.predicted_s.to_bits() == gd.predicted_s.to_bits();
            let us_per_candidate = wall * 1e6 / ex.candidates as f64;
            device_cands += ex.candidates;
            device_wall += wall;
            // The acceptance budget: evaluating a candidate must stay
            // well under a millisecond, or the model search loses its
            // reason to exist over measure-by-running.
            assert!(
                us_per_candidate <= 1000.0,
                "{}: {us_per_candidate:.1} us/candidate blows the 1 ms budget",
                dev.name
            );
            println!(
                "  {:>14} {w:>4}x{h:<4}: {} ({:?}) {:.3}x vs default, {:>6.0} cand/s, \
                 guided {}",
                dev.name,
                flags_label(&ex.opts),
                ex.tuning.reduction_strategy,
                ex.speedup_vs_default(),
                ex.candidates as f64 / wall,
                if agree { "agrees" } else { "DISAGREES" },
            );
            rows.push(TuneRow {
                device: dev.name.to_string(),
                width: w,
                height: h,
                flags: flags_label(&ex.opts),
                strategy: format!("{:?}", ex.tuning.reduction_strategy),
                candidates: ex.candidates,
                candidates_per_s: ex.candidates as f64 / wall,
                us_per_candidate,
                guided_agrees: agree,
                speedup_vs_default: ex.speedup_vs_default(),
            });
        }
        // One ledger series per device: aggregate candidates/s across the
        // shapes (the tuner-throughput number --check gates). The width
        // key slot holds the shape count.
        entries.push(LedgerEntry::now(
            "tune_model",
            dev.name,
            shapes.len(),
            device_cands as f64 / device_wall,
            Vec::new(),
        ));
    }
    benchjson::write_tune(&out_path, "tune_model", &rows).expect("write bench json");
    println!("wrote {out_path}");
    let ledger_path = std::env::var("LEDGER_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| ledger::default_path());
    ledger::append(&ledger_path, &entries).expect("append perf ledger");
    println!(
        "appended {} entries to {}",
        entries.len(),
        ledger_path.display()
    );
}
