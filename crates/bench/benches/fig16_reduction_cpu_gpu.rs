//! Criterion bench for Fig. 16: reduction on CPU (with the pEdge
//! transfer) vs the two-stage GPU reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sharpness_bench::w8000;
use sharpness_core::gpu::ablate::{reduction_cpu_time, reduction_gpu_time};
use sharpness_core::gpu::kernels::reduction::ReductionStrategy;

fn bench_fig16(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_reduction_cpu_gpu");
    group.sample_size(10);
    let ctx = w8000();
    for n in [256 * 256usize, 1024 * 1024] {
        group.bench_with_input(BenchmarkId::new("cpu", n), &n, |b, &n| {
            b.iter(|| reduction_cpu_time(&ctx, n))
        });
        group.bench_with_input(BenchmarkId::new("gpu", n), &n, |b, &n| {
            b.iter(|| reduction_gpu_time(&ctx, n, ReductionStrategy::UnrollOne, 4096))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig16);
criterion_main!(benches);
