//! Wall-clock throughput of the multi-frame paths (not a figure from the
//! paper — this measures the *host* cost of running the simulator, which
//! is what persistent plans, buffer pooling and the throughput engine
//! optimize).
//!
//! Three ways to push N identical-shape frames through the GPU pipeline:
//!
//! * `fresh`  — one `GpuPipeline::run` per frame on an unpooled context:
//!   every frame re-allocates every device buffer (the pre-plan path);
//! * `plan`   — one prepared `PipelinePlan`, `run_into` per frame:
//!   buffers, queue, host scratch and stage names all reused;
//! * `engine` — `ThroughputEngine` fanning the frames over the host
//!   cores, one pooled plan per worker.
//!
//! Run with `cargo bench --bench throughput_wallclock`. Environment knobs:
//! `TP_WIDTH` (default 1024), `TP_FRAMES` (default 12), `TP_OUT` (JSON
//! results path, default the committed `baselines/BENCH_5_throughput.json`).

use std::time::Instant;

use sharpness_bench::benchjson::{self, BenchRow};
use sharpness_bench::ledger::{self, LedgerEntry};
use sharpness_bench::workload;
use sharpness_core::gpu::{GpuPipeline, OptConfig, Schedule, ThroughputEngine};
use sharpness_core::params::SharpnessParams;
use simgpu::context::Context;
use simgpu::device::DeviceSpec;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fps(frames: usize, seconds: f64) -> f64 {
    frames as f64 / seconds
}

fn main() {
    let width = env_usize("TP_WIDTH", 1024);
    let frames = env_usize("TP_FRAMES", 12);
    let img = workload(width);
    let params = SharpnessParams::default();
    let stream: Vec<_> = (0..frames).map(|_| img.clone()).collect();

    println!("throughput_wallclock: {frames} frames of {width}x{width}, OptConfig::all()");

    // Per-frame allocation path: fresh pipeline + unpooled context every
    // frame, exactly what a caller without `prepared()` pays.
    let fresh_s = {
        let run_one = || {
            let ctx = Context::new(DeviceSpec::firepro_w8000()).with_pooling(false);
            GpuPipeline::new(ctx, params, OptConfig::all())
                .run(&img)
                .unwrap()
                .total_s
        };
        run_one(); // warm-up
        let t0 = Instant::now();
        for _ in 0..frames {
            std::hint::black_box(run_one());
        }
        t0.elapsed().as_secs_f64()
    };
    println!(
        "  fresh : {fresh_s:8.3} s  ({:7.2} frames/s)",
        fps(frames, fresh_s)
    );

    // Persistent plan on a pooled context, single worker.
    let plan_s = {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let pipe = GpuPipeline::new(ctx, params, OptConfig::all());
        let mut plan = pipe.prepared(width, width).unwrap();
        let mut out = vec![0.0f32; img.len()];
        plan.run_into(&img, &mut out).unwrap(); // warm-up (fills the pool)
        let t0 = Instant::now();
        for _ in 0..frames {
            std::hint::black_box(plan.run_into(&img, &mut out).unwrap());
        }
        t0.elapsed().as_secs_f64()
    };
    println!(
        "  plan  : {plan_s:8.3} s  ({:7.2} frames/s)  {:4.2}x vs fresh",
        fps(frames, plan_s),
        fresh_s / plan_s
    );

    // Persistent plan under the cache-blocked banded schedule (auto band
    // height). Same pixels, same simulated time — wall-clock only.
    let banded_s = {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let pipe =
            GpuPipeline::new(ctx, params, OptConfig::all()).with_schedule(Schedule::Banded(0));
        let mut plan = pipe.prepared(width, width).unwrap();
        let mut out = vec![0.0f32; img.len()];
        plan.run_into(&img, &mut out).unwrap(); // warm-up
        let t0 = Instant::now();
        for _ in 0..frames {
            std::hint::black_box(plan.run_into(&img, &mut out).unwrap());
        }
        t0.elapsed().as_secs_f64()
    };
    println!(
        "  banded: {banded_s:8.3} s  ({:7.2} frames/s)  {:4.2}x vs plan",
        fps(frames, banded_s),
        plan_s / banded_s
    );

    // Throughput engine: pooled plans fanned over the host cores.
    let (engine_s, workers) = {
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let pipe = GpuPipeline::new(ctx, params, OptConfig::all());
        let engine = ThroughputEngine::new(pipe, 0);
        engine.process(&stream[..1]).unwrap(); // warm-up
        let t0 = Instant::now();
        let rep = std::hint::black_box(engine.process(&stream).unwrap());
        (t0.elapsed().as_secs_f64(), rep.threads)
    };
    println!(
        "  engine: {engine_s:8.3} s  ({:7.2} frames/s)  {:4.2}x vs fresh  [{workers} workers]",
        fps(frames, engine_s),
        fresh_s / engine_s
    );

    // Machine-readable results; speedups are relative to the monolithic
    // persistent plan (the single-worker reference schedule).
    let out_path = std::env::var("TP_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../baselines/BENCH_5_throughput.json"
        )
        .to_string()
    });
    let row = |schedule: &str, seconds: f64| {
        BenchRow::with_active_backend(
            width,
            schedule.to_string(),
            fps(frames, seconds),
            plan_s / seconds,
        )
    };
    let rows = vec![
        row("fresh", fresh_s),
        row("monolithic", plan_s),
        row("banded(auto)", banded_s),
        row(&format!("engine[{workers}]"), engine_s),
    ];
    benchjson::write(&out_path, "throughput_wallclock", &rows).expect("write bench json");
    println!("wrote {out_path}");

    // Perf ledger: append every measured configuration with per-phase
    // span shares from one observation frame (outside the timed loops).
    let mono_shares = ledger::phase_shares(width, Schedule::Monolithic);
    let band_shares = ledger::phase_shares(width, Schedule::Banded(0));
    let entry = |schedule: &str, seconds: f64, shares: &Vec<(String, f64)>| {
        LedgerEntry::now(
            "throughput_wallclock",
            schedule,
            width,
            fps(frames, seconds),
            shares.clone(),
        )
    };
    let entries = vec![
        entry("fresh", fresh_s, &mono_shares),
        entry("monolithic", plan_s, &mono_shares),
        entry("banded(auto)", banded_s, &band_shares),
        entry(&format!("engine[{workers}]"), engine_s, &mono_shares),
    ];
    let ledger_path = std::env::var("LEDGER_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| ledger::default_path());
    ledger::append(&ledger_path, &entries).expect("append perf ledger");
    println!(
        "appended {} entries to {}",
        entries.len(),
        ledger_path.display()
    );
}
