//! Criterion bench for Fig. 14: wall-clock of the GPU pipeline at each
//! cumulative optimization step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sharpness_bench::{w8000, workload};
use sharpness_core::gpu::{GpuPipeline, OptConfig};
use sharpness_core::params::SharpnessParams;

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_optsteps");
    group.sample_size(10);
    let img = workload(256);
    for (name, opts) in OptConfig::cumulative_steps() {
        group.bench_with_input(BenchmarkId::new("step", name), &img, |b, img| {
            let p = GpuPipeline::new(w8000(), SharpnessParams::default(), opts);
            b.iter(|| p.run(img).unwrap().total_s)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
