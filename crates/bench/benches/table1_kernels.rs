//! Criterion bench for the per-kernel building blocks on the Table-I
//! device pair: scalar vs vectorized Sobel, fused vs unfused sharpness
//! tail, and the upscale center variants. This is the wall-clock
//! counterpart of the Fig. 13 stage analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sharpness_bench::{w8000, workload};
use sharpness_core::cpu::stages;
use sharpness_core::gpu::kernels::sharpen::{sharpness_fused_kernel, sharpness_fused_vec4_kernel};
use sharpness_core::gpu::kernels::sobel::{sobel_scalar_kernel, sobel_vec4_kernel};
use sharpness_core::gpu::kernels::upscale::{
    upscale_center_scalar_kernel, upscale_center_vec4_kernel,
};
use sharpness_core::gpu::kernels::{KernelTuning, SrcImage};
use sharpness_core::params::SharpnessParams;

const W: usize = 256;

fn bench_kernels(c: &mut Criterion) {
    let img = workload(W);
    let padded = img.padded(1, false);
    let (down, _) = stages::downscale(&img);
    let (up, _, _) = stages::upscale(&down, W, W);
    let (pedge, _) = stages::sobel(&img);
    let (mean, _) = stages::reduction(&pedge);
    let ctx = w8000();
    let orig_buf = ctx.buffer_from("original", img.pixels());
    let padded_buf = ctx.buffer_from("padded", padded.pixels());
    let down_buf = ctx.buffer_from("down", down.pixels());
    let up_buf = ctx.buffer_from("up", up.pixels());
    let pedge_buf = ctx.buffer_from("pEdge", pedge.pixels());
    let out = ctx.buffer::<f32>("final", W * W);
    let raw = SrcImage {
        view: orig_buf.view(),
        pitch: W,
        pad: 0,
    };
    let pad = SrcImage {
        view: padded_buf.view(),
        pitch: W + 2,
        pad: 1,
    };
    let tune = KernelTuning { others: true };
    let params = SharpnessParams::default();

    let mut group = c.benchmark_group("table1_kernels");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("sobel", "scalar"), |b| {
        b.iter(|| {
            let mut q = ctx.queue();
            sobel_scalar_kernel(&mut q, &raw, &out, W, W, W, tune)
                .unwrap()
                .total_s
        })
    });
    group.bench_function(BenchmarkId::new("sobel", "vec4"), |b| {
        b.iter(|| {
            let mut q = ctx.queue();
            sobel_vec4_kernel(&mut q, &pad, &out, W, W, W, tune)
                .unwrap()
                .total_s
        })
    });
    group.bench_function(BenchmarkId::new("sharpness", "fused_scalar"), |b| {
        b.iter(|| {
            let mut q = ctx.queue();
            sharpness_fused_kernel(
                &mut q,
                &pad,
                &up_buf.view(),
                &pedge_buf.view(),
                &out,
                mean,
                params,
                W,
                W,
                W,
                tune,
            )
            .unwrap()
            .total_s
        })
    });
    group.bench_function(BenchmarkId::new("sharpness", "fused_vec4"), |b| {
        b.iter(|| {
            let mut q = ctx.queue();
            sharpness_fused_vec4_kernel(
                &mut q,
                &pad,
                &up_buf.view(),
                &pedge_buf.view(),
                &out,
                mean,
                params,
                W,
                W,
                W,
                tune,
            )
            .unwrap()
            .total_s
        })
    });
    group.bench_function(BenchmarkId::new("upscale_center", "scalar"), |b| {
        b.iter(|| {
            let mut q = ctx.queue();
            upscale_center_scalar_kernel(&mut q, &down_buf.view(), &out, W, W, W, tune)
                .unwrap()
                .total_s
        })
    });
    group.bench_function(BenchmarkId::new("upscale_center", "vec4"), |b| {
        b.iter(|| {
            let mut q = ctx.queue();
            upscale_center_vec4_kernel(&mut q, &down_buf.view(), &out, W, W, W, tune)
                .unwrap()
                .total_s
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
