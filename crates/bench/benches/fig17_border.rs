//! Criterion bench for Fig. 17: the upscale border on CPU vs GPU around
//! the crossover sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sharpness_bench::{w8000, FIG17_SIZES};
use sharpness_core::gpu::ablate::{border_cpu_time, border_gpu_time};

fn bench_fig17(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_border");
    group.sample_size(10);
    let ctx = w8000();
    for w in FIG17_SIZES {
        group.bench_with_input(BenchmarkId::new("cpu", w), &w, |b, &w| {
            b.iter(|| border_cpu_time(&ctx, w, w))
        });
        group.bench_with_input(BenchmarkId::new("gpu", w), &w, |b, &w| {
            b.iter(|| border_gpu_time(&ctx, w, w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig17);
criterion_main!(benches);
