//! Wall-clock comparison of the kernel span backends and schedules (not a
//! figure from the paper — the SIMD backends and banding optimize the
//! *host* cost of running the simulator; pixels and simulated seconds are
//! bit-identical by construction, so frames/s of real time is the only
//! number that can move).
//!
//! For each square size the bench runs one persistent plan per
//! (backend, schedule) configuration over the same frame stream:
//! the monolithic schedule with the backend forced to `autovec` (the
//! scalar reference row, speedup 1.0), the monolithic schedule on the
//! detected SIMD backend, and the cache-blocked banded schedule on the
//! detected backend. Results land in `MP_OUT` (default the committed
//! `baselines/BENCH_6.json`, so a re-run refreshes the tracked record).
//!
//! Run with `cargo bench --features simd --bench megapass_wallclock`.
//! Environment knobs: `MP_SIZES` (default `1024,2048,4096`), `MP_FRAMES`
//! (default 3), `MP_BAND` (band rows; default 0 = auto from the host
//! cache size), `MP_OUT` (output path).

use std::time::Instant;

use sharpness_bench::benchjson::{self, BenchRow};
use sharpness_bench::ledger::{self, LedgerEntry};
use sharpness_bench::workload;
use sharpness_core::gpu::{BandedStats, GpuPipeline, OptConfig, Schedule};
use sharpness_core::params::SharpnessParams;
use sharpness_core::simd::{self, Backend};
use simgpu::context::Context;
use simgpu::device::DeviceSpec;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_sizes() -> Vec<usize> {
    std::env::var("MP_SIZES")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1024, 2048, 4096])
}

/// Times `frames` runs of a persistent plan under `schedule`; returns
/// frames/s of wall-clock time.
fn measure(width: usize, frames: usize, schedule: Schedule) -> f64 {
    let img = workload(width);
    let ctx = Context::new(DeviceSpec::firepro_w8000());
    let pipe =
        GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all()).with_schedule(schedule);
    let mut plan = pipe.prepared(width, width).unwrap();
    let mut out = vec![0.0f32; width * width];
    plan.run_into(&img, &mut out).unwrap(); // warm-up (fills the pool)
    let t0 = Instant::now();
    for _ in 0..frames {
        std::hint::black_box(plan.run_into(&img, &mut out).unwrap());
    }
    frames as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let sizes = env_sizes();
    let frames = env_usize("MP_FRAMES", 3);
    let band = env_usize("MP_BAND", 0);
    let out_path = std::env::var("MP_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../baselines/BENCH_6.json").to_string()
    });
    let band_label = if band == 0 {
        "banded(auto)".to_string()
    } else {
        format!("banded({band})")
    };

    println!(
        "megapass_wallclock: {frames} frames per configuration, OptConfig::all(), \
         host features [{}]",
        simd::host_features()
    );
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for &width in &sizes {
        let stats = BandedStats::for_frame(width, width, &OptConfig::all(), band);
        // One spans-enabled observation frame per schedule supplies the
        // attribution data carried by the ledger entries; it runs outside
        // every timed loop.
        let mono_shares = ledger::phase_shares(width, Schedule::Monolithic);
        let band_shares = ledger::phase_shares(width, Schedule::Banded(band));

        // Scalar reference: the autovectorized spans, monolithic schedule.
        simd::set_backend(Some(Backend::Autovec));
        let scalar_fps = measure(width, frames, Schedule::Monolithic);
        rows.push(BenchRow::with_active_backend(
            width,
            "monolithic".to_string(),
            scalar_fps,
            1.0,
        ));
        entries.push(LedgerEntry::now(
            "megapass_wallclock",
            "monolithic",
            width,
            scalar_fps,
            mono_shares.clone(),
        ));
        // Banding with the scalar spans, to isolate the backend effect at
        // a fixed schedule.
        let band_scalar_fps = measure(width, frames, Schedule::Banded(band));
        rows.push(BenchRow::with_active_backend(
            width,
            band_label.clone(),
            band_scalar_fps,
            band_scalar_fps / scalar_fps,
        ));
        entries.push(LedgerEntry::now(
            "megapass_wallclock",
            &band_label,
            width,
            band_scalar_fps,
            band_shares.clone(),
        ));

        // Detected SIMD backend (autovec again when the feature is off).
        simd::set_backend(None);
        let simd_label = simd::active_backend().label();
        let simd_fps = measure(width, frames, Schedule::Monolithic);
        let simd_speedup = simd_fps / scalar_fps;
        rows.push(BenchRow::with_active_backend(
            width,
            "monolithic".to_string(),
            simd_fps,
            simd_speedup,
        ));
        entries.push(LedgerEntry::now(
            "megapass_wallclock",
            "monolithic",
            width,
            simd_fps,
            mono_shares.clone(),
        ));

        // Cache-blocked banding on top of the SIMD backend.
        let band_fps = measure(width, frames, Schedule::Banded(band));
        let band_speedup = band_fps / scalar_fps;
        rows.push(BenchRow::with_active_backend(
            width,
            band_label.clone(),
            band_fps,
            band_speedup,
        ));
        entries.push(LedgerEntry::now(
            "megapass_wallclock",
            &band_label,
            width,
            band_fps,
            band_shares.clone(),
        ));

        println!(
            "  {width:>4}²: autovec {scalar_fps:7.2} fps | {band_label}+autovec \
             {band_scalar_fps:7.2} fps ({:4.2}x) | {simd_label} {simd_fps:7.2} fps \
             ({simd_speedup:4.2}x) | {band_label}+{simd_label} {band_fps:7.2} fps \
             ({band_speedup:4.2}x, {} bands of {} rows, peak resident {:.1} MiB)",
            band_scalar_fps / scalar_fps,
            stats.bands,
            stats.rows_per_band,
            stats.peak_resident_bytes as f64 / (1 << 20) as f64,
        );
    }
    benchjson::write(&out_path, "megapass_wallclock", &rows).expect("write bench json");
    println!("wrote {out_path}");
    let ledger_path = std::env::var("LEDGER_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| ledger::default_path());
    ledger::append(&ledger_path, &entries).expect("append perf ledger");
    println!(
        "appended {} entries to {}",
        entries.len(),
        ledger_path.display()
    );
}
