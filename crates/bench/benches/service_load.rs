//! Self-timed load bench for the sharpen service (`core::service`).
//!
//! Replays the same deterministic Zipf/bursty request stream at several
//! offered loads (the mean inter-arrival gap is the knob) through two
//! paths:
//!
//! * `service`   — [`SharpenService`]: sharded plan cache, shape-coalescing
//!   batches, model-based admission control;
//! * `unbatched` — the per-request baseline: a fresh `prepared()` plan for
//!   every request, no cache, no coalescing, no shedding.
//!
//! The headline number is `speedup_vs_unbatched` — wall frames/s of the
//! service over the baseline on the identical stream — which is what the
//! plan cache and batch coalescing must keep above 1.0. Latency rows
//! report both wall *service* time (host per-frame execution) and
//! simulated arrival→completion latency (queueing included; the honest
//! currency on a 1-core host — see the `core::service::scheduler` docs).
//!
//! Run with `cargo bench --bench service_load`. Environment knobs:
//! `SV_REQUESTS` (default 192), `SV_SEED` (default 2015), `SV_OUT` (JSON
//! results path, default the committed `baselines/BENCH_9_service.json`),
//! `LEDGER_OUT` (perf-ledger path).

use std::time::Instant;

use sharpness_bench::benchjson::{self, ServiceRow};
use sharpness_bench::ledger::{self, LedgerEntry};
use sharpness_core::gpu::{GpuPipeline, OptConfig};
use sharpness_core::params::SharpnessParams;
use sharpness_core::service::{generate_requests, ServiceConfig, SharpenService, TrafficConfig};
use simgpu::context::Context;
use simgpu::device::DeviceSpec;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn pipeline() -> GpuPipeline {
    let ctx = Context::new(DeviceSpec::firepro_w8000());
    GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all())
}

/// Serves every request with a freshly prepared plan — the cost a caller
/// pays without the service layer. Returns wall seconds for the stream.
fn unbatched_s(requests: &[sharpness_core::service::Request]) -> f64 {
    let pipe = pipeline();
    let mut out = Vec::new();
    let t0 = Instant::now();
    for r in requests {
        let mut plan = pipe.prepared(r.width, r.height).expect("prepare plan");
        let frame = r.frame();
        out.resize(frame.len(), 0.0);
        std::hint::black_box(plan.run_into(&frame, &mut out).expect("run frame"));
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let n = env_u64("SV_REQUESTS", 192) as usize;
    let seed = env_u64("SV_SEED", 2015);
    // Offered loads: relaxed → paced → saturating. The mean gap is
    // simulated seconds between arrivals; smaller gap = hotter stream.
    let gaps_us: [u64; 3] = [2000, 500, 125];

    println!("service_load: {n} requests, seed {seed}, gaps {gaps_us:?} us");

    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for gap_us in gaps_us {
        let traffic = TrafficConfig {
            requests: n,
            seed,
            mean_gap_s: gap_us as f64 * 1e-6,
            ..TrafficConfig::default()
        };
        let requests = generate_requests(&traffic);
        let label = format!("gap={gap_us}us");

        // Warm-up (JIT-free Rust, but page-faults + allocator warmth), then
        // the measured service run on a fresh service (cold plan cache —
        // prepare cost is part of what the cache amortises).
        SharpenService::new(pipeline(), ServiceConfig::default())
            .serve(&requests)
            .expect("warm-up serve");
        let report = SharpenService::new(pipeline(), ServiceConfig::default())
            .serve(&requests)
            .expect("serve");

        let base_s = unbatched_s(&requests);
        let base_fps = requests.len() as f64 / base_s;
        let speedup = report.wall_fps() / base_fps;

        let wall = report.wall_latency();
        let sim = report.sim_latency();
        println!(
            "  {label:<11} served {:>4}/{:<4} shed {:>3}  {:7.1} frames/s wall \
             ({:4.2}x vs unbatched {:7.1})  sim p99 {:8.3} ms",
            report.served,
            report.requests,
            report.shed,
            report.wall_fps(),
            speedup,
            base_fps,
            sim.quantile(0.99) * 1e3,
        );

        rows.push(ServiceRow {
            label: label.clone(),
            requests: report.requests,
            served: report.served,
            peak_queued: report.peak_queued as u64,
            shed: report.shed,
            batches: report.batches,
            frames_per_s: report.wall_fps(),
            speedup_vs_unbatched: speedup,
            wall_p50_ms: wall.quantile(0.5) * 1e3,
            wall_p99_ms: wall.quantile(0.99) * 1e3,
            sim_p50_ms: sim.quantile(0.5) * 1e3,
            sim_p99_ms: sim.quantile(0.99) * 1e3,
            backend: sharpness_core::simd::active_backend().label().to_string(),
        });
        // Ledger `service` series: one entry per offered load. No span
        // shares — the service run crosses many shapes, so per-phase
        // attribution belongs to the pipeline benches.
        entries.push(LedgerEntry::now(
            "service_load",
            &label,
            traffic.shapes[0].0,
            report.wall_fps(),
            Vec::new(),
        ));
    }

    let out_path = std::env::var("SV_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../baselines/BENCH_9_service.json"
        )
        .to_string()
    });
    benchjson::write_service(&out_path, "service_load", &rows).expect("write bench json");
    println!("wrote {out_path}");

    let ledger_path = std::env::var("LEDGER_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| ledger::default_path());
    ledger::append(&ledger_path, &entries).expect("append perf ledger");
    println!(
        "appended {} entries to {}",
        entries.len(),
        ledger_path.display()
    );
}
