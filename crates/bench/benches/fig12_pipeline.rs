//! Criterion bench for Fig. 12: wall-clock of the CPU reference, the base
//! GPU port and the fully optimized GPU port of the sharpness pipeline.
//!
//! Wall-clock here measures the *functional execution* of the simulator on
//! the host (the simulated W8000 seconds are reported by `repro fig12`);
//! the interesting wall-clock shape is that the pipelines stay fast enough
//! to iterate on, and that the optimized variant does not regress
//! functionally.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sharpness_bench::{w8000, workload};
use sharpness_core::cpu::CpuPipeline;
use sharpness_core::gpu::{GpuPipeline, OptConfig};
use sharpness_core::params::SharpnessParams;

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_pipeline");
    group.sample_size(10);
    for width in [128usize, 256, 512] {
        let img = workload(width);
        group.bench_with_input(BenchmarkId::new("cpu", width), &img, |b, img| {
            let p = CpuPipeline::new(SharpnessParams::default());
            b.iter(|| p.run(img).unwrap().total_s)
        });
        group.bench_with_input(BenchmarkId::new("gpu_base", width), &img, |b, img| {
            let p = GpuPipeline::new(w8000(), SharpnessParams::default(), OptConfig::none());
            b.iter(|| p.run(img).unwrap().total_s)
        });
        group.bench_with_input(BenchmarkId::new("gpu_opt", width), &img, |b, img| {
            let p = GpuPipeline::new(w8000(), SharpnessParams::default(), OptConfig::all());
            b.iter(|| p.run(img).unwrap().total_s)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
