//! Figure/table reproduction CLI.
//!
//! ```text
//! repro [table1|fig12|fig13a|fig13b|fig13c|fig14|fig15|fig16|fig17|all]
//!       [--sanitize] [--verify-static]
//! ```
//!
//! Prints, for every experiment of the paper's evaluation section, the
//! regenerated rows/series alongside the shape criterion the paper
//! reports. Model times are deterministic; run with `--release` for
//! reasonable wall-clock at 4096².
//!
//! `--sanitize` first verifies every optimization config under the
//! shadow-execution sanitizer (races, out-of-bounds, barrier divergence,
//! accounting drift) and exits non-zero on any finding; alone, it runs
//! only that verification sweep.
//!
//! `--verify-static` runs the static access-summary verifier over every
//! optimization config × shape (aligned/ragged/odd) × schedule — proving
//! bounds, write disjointness, byte accounting, and banded slice coverage
//! without executing a single kernel — and exits non-zero on any failed
//! proof; alone, it runs only the static sweep.
//!
//! `--metrics <path>` (also spelled `--metrics-dir`, same flag the
//! `sharpen` tool takes) writes the per-config efficiency metrics — the
//! same JSONL `metrics_baseline` maintains under `baselines/metrics/`.
//! Dir vs file by inspection: a directory path gets one file per
//! cumulative optimization step; a `*.jsonl` file path gets every step in
//! one file with `step-slug.`-prefixed metric names. Alone, it writes
//! only the metrics.

use sharpness_bench::*;
use sharpness_core::gpu::{verify_static, GpuPipeline, OptConfig, Schedule, Tuning};
use sharpness_core::params::SharpnessParams;
use simgpu::context::Context;
use simgpu::device::DeviceSpec;

/// Runs every optimization config under the sanitizer at 128² plus the
/// end-member configs at a ragged 1000x700; returns whether all came back
/// clean, printing findings as they appear.
fn sanitize_sweep() -> bool {
    println!("sanitizer sweep — every config must be race/OOB/drift-free");
    let mut clean = true;
    let mut check = |w: usize, h: usize, bits: u32, cfg: OptConfig| {
        let img = imagekit::generate::natural(w, h, 17);
        let ctx = Context::sanitized(DeviceSpec::firepro_w8000());
        let run = GpuPipeline::new(ctx.clone(), SharpnessParams::default(), cfg).run(&img);
        let report = ctx.sanitize_report().expect("sanitizer enabled");
        match run {
            Ok(_) if report.is_clean() => {}
            Ok(_) => {
                clean = false;
                println!("  {w}x{h} config {bits:06b}: {report}");
            }
            Err(e) => {
                clean = false;
                println!("  {w}x{h} config {bits:06b}: run failed: {e}");
            }
        }
    };
    for bits in 0..64u32 {
        let cfg = OptConfig {
            data_transfer: bits & 1 != 0,
            kernel_fusion: bits & 2 != 0,
            reduction_gpu: bits & 4 != 0,
            vectorization: bits & 8 != 0,
            border_gpu: bits & 16 != 0,
            others: bits & 32 != 0,
        };
        check(128, 128, bits, cfg);
    }
    check(1000, 700, 0, OptConfig::none());
    check(1000, 700, 63, OptConfig::all());
    if clean {
        println!("  66 sanitized runs, all clean\n");
    }
    clean
}

/// Statically proves the full acceptance grid — all 64 configs × four
/// shapes × both schedules — without executing a kernel; returns whether
/// every proof succeeded, printing failures as they appear.
fn verify_static_sweep() -> bool {
    println!("static verifier sweep — every config/shape/schedule must prove sound");
    let tuning = Tuning::default();
    let mut clean = true;
    let (mut proofs, mut dispatches, mut windows) = (0u64, 0u64, 0u64);
    let mut max_slack = 0.0f64;
    for (w, h) in [(256, 256), (768, 768), (1001, 701), (1023, 769)] {
        for bits in 0..64u32 {
            let cfg = OptConfig {
                data_transfer: bits & 1 != 0,
                kernel_fusion: bits & 2 != 0,
                reduction_gpu: bits & 4 != 0,
                vectorization: bits & 8 != 0,
                border_gpu: bits & 16 != 0,
                others: bits & 32 != 0,
            };
            for schedule in [Schedule::Monolithic, Schedule::Banded(64)] {
                match verify_static(w, h, &cfg, &tuning, schedule) {
                    Ok(r) => {
                        proofs += 1;
                        dispatches += r.stats.dispatches;
                        windows += r.stats.windows;
                        max_slack = max_slack.max(r.stats.max_ratio_slack);
                    }
                    Err(e) => {
                        clean = false;
                        println!("  {w}x{h} config {bits:06b} {schedule:?}: {e}");
                    }
                }
            }
        }
    }
    if clean {
        println!(
            "  {proofs} schedules proved sound ({dispatches} dispatches, {windows} access \
             windows; max read-overcharge slack {max_slack:.4})\n"
        );
    }
    clean
}

/// Writes the per-config efficiency metrics. Dir vs file by inspection:
/// an existing directory (or any path without a `.jsonl` extension) gets
/// one JSONL file per cumulative step; a `*.jsonl` path gets all steps in
/// one file, each metric name prefixed with its step slug.
fn write_metrics(path: &str) {
    use sharpness_core::telemetry::{baseline_configs, baseline_registry};
    let p = std::path::Path::new(path);
    let single_file = !p.is_dir() && p.extension().is_some_and(|e| e == "jsonl");
    if single_file {
        let mut out = String::new();
        for (slug, cfg) in baseline_configs() {
            let reg = baseline_registry(&cfg).expect("baseline config runs");
            for line in reg.to_jsonl().lines() {
                // Lines are our own emitter's output, so the name field is
                // always the first key; prefix it with the step slug.
                out.push_str(&line.replacen("{\"name\":\"", &format!("{{\"name\":\"{slug}."), 1));
                out.push('\n');
            }
        }
        std::fs::write(p, out).expect("write metrics");
        println!("wrote {}", p.display());
    } else {
        std::fs::create_dir_all(p).expect("create metrics dir");
        for (slug, cfg) in baseline_configs() {
            let reg = baseline_registry(&cfg).expect("baseline config runs");
            let file = p.join(format!("{slug}.jsonl"));
            std::fs::write(&file, reg.to_jsonl()).expect("write metrics");
            println!("wrote {}", file.display());
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let sanitize = args.iter().any(|a| a == "--sanitize");
    args.retain(|a| a != "--sanitize");
    let verify = args.iter().any(|a| a == "--verify-static");
    args.retain(|a| a != "--verify-static");
    let metrics_dir = args
        .iter()
        .position(|a| a == "--metrics-dir" || a == "--metrics")
        .map(|i| {
            if i + 1 >= args.len() {
                eprintln!("{} needs a path", args[i]);
                std::process::exit(2);
            }
            let dir = args[i + 1].clone();
            args.drain(i..=i + 1);
            dir
        });
    if verify {
        if !verify_static_sweep() {
            std::process::exit(1);
        }
        if args.is_empty() && !sanitize && metrics_dir.is_none() {
            return;
        }
    }
    if sanitize {
        if !sanitize_sweep() {
            std::process::exit(1);
        }
        if args.is_empty() && metrics_dir.is_none() {
            return;
        }
    }
    if let Some(dir) = &metrics_dir {
        write_metrics(dir);
        if args.is_empty() {
            return;
        }
    }
    let what = args.first().map(String::as_str).unwrap_or("all");
    let all = what == "all";

    if all || what == "table1" {
        println!("{}", table1());
    }
    if all || what == "fig12" {
        fig12();
    }
    if all || what == "fig13a" {
        fig13a();
    }
    if all || what == "fig13b" {
        fig13(
            "Fig. 13(b) — time fraction per stage, base GPU version",
            OptConfig::none(),
        );
    }
    if all || what == "fig13c" {
        fig13(
            "Fig. 13(c) — time fraction per stage, optimized GPU version",
            OptConfig::all(),
        );
    }
    if all || what == "fig14" {
        fig14();
    }
    if all || what == "fig15" {
        fig15();
    }
    if all || what == "fig16" {
        fig16();
    }
    if all || what == "fig17" {
        fig17();
    }
    if all || what == "ablations" {
        ablations();
    }
    if what == "csv" {
        let dir = args.get(1).map(String::as_str).unwrap_or("repro_csv");
        write_csvs(dir);
    }
    if !all
        && ![
            "table1",
            "fig12",
            "fig13a",
            "fig13b",
            "fig13c",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "ablations",
            "csv",
        ]
        .contains(&what)
    {
        eprintln!("unknown experiment `{what}`");
        eprintln!(
            "usage: repro [table1|fig12|fig13a|fig13b|fig13c|fig14|fig15|fig16|fig17|ablations|all|csv <dir>] [--sanitize] [--verify-static] [--metrics <dir-or-file.jsonl>]"
        );
        std::process::exit(2);
    }
}

fn ablations() {
    use sharpness_bench::ablation;
    println!("Model ablations — robustness of the paper's conclusions to device constants");

    println!("  vectorization win vs vector coalescing factor (1024², opt/base):");
    for (f, ratio) in ablation::sweep_coalesce_vector(1024, &[0.55, 0.65, 0.75, 0.85, 0.95]) {
        println!("    coalesce_vector {f:.2} -> {ratio:.2}x");
    }

    println!("  launch overhead vs opt/base (256²) and border crossover:");
    for (us, ratio, crossover) in ablation::sweep_launch_overhead(256, &[5.0, 10.0, 20.0, 40.0]) {
        println!("    launch {us:>4.0} µs -> opt/base {ratio:.2}x, border crossover {crossover}²");
    }

    println!("  PCI-E bandwidth vs totals (1024²):");
    for (bw, base, opt) in ablation::sweep_pcie_bandwidth(1024, &[3.0, 6.0, 12.0]) {
        println!(
            "    {bw:>4.0} GB/s -> base {} opt {}",
            fmt_time(base),
            fmt_time(opt)
        );
    }

    println!("  barrier stall vs reduction strategies (1024²):");
    for (cyc, one, two, none) in ablation::sweep_barrier_cost(1024 * 1024, &[16.0, 64.0, 256.0]) {
        println!(
            "    {cyc:>4.0} cycles -> unroll1 {} unroll2 {} no-unroll {}",
            fmt_time(one),
            fmt_time(two),
            fmt_time(none)
        );
    }
    println!();
}

fn fig12() {
    println!("Fig. 12 — CPU vs base GPU vs optimized GPU (simulated seconds)");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "size", "CPU", "GPU base", "GPU opt", "base x", "opt x", "opt/base"
    );
    for r in fig12_data(&FIG12_SIZES) {
        println!(
            "{:>7}² {}{}{} {:>9.1}x {:>9.1}x {:>9.2}x",
            r.width,
            fmt_time(r.cpu_s),
            fmt_time(r.base_s),
            fmt_time(r.opt_s),
            r.base_speedup(),
            r.opt_speedup(),
            r.opt_over_base(),
        );
    }
    println!("paper shape: base speedup 9.8→35.3 with size; opt adds 1.2–2.0x; total 10.7–69.3x\n");
}

fn fig13a() {
    println!("Fig. 13(a) — time fraction per stage, CPU version");
    print_fractions(fig13a_data(&FIG12_SIZES));
    println!("paper shape: overshoot control + strength matrix dominate; sobel/pError/upscale shrink with size\n");
}

fn fig13(title: &str, opts: OptConfig) {
    println!("{title}");
    print_fractions(fig13_gpu_data(&FIG12_SIZES, opts));
    if opts == OptConfig::none() {
        println!("paper shape: center, sobel and reduction are the base GPU bottlenecks; data-init share shrinks with size\n");
    } else {
        println!("paper shape: fractions evenly distributed, no prominent bottleneck\n");
    }
}

fn print_fractions(data: Vec<(usize, Vec<(String, f64)>)>) {
    // Collect category order from the largest size (most complete).
    let cats: Vec<String> = data
        .last()
        .map(|(_, c)| c.iter().map(|(n, _)| n.clone()).collect())
        .unwrap_or_default();
    print!("{:>10}", "size");
    for c in &cats {
        print!(" {:>12.12}", c);
    }
    println!();
    for (width, row) in &data {
        print!("{width:>9}²");
        for c in &cats {
            let f = row
                .iter()
                .find(|(n, _)| n == c)
                .map(|(_, f)| *f)
                .unwrap_or(0.0);
            print!(" {:>11.1}%", f * 100.0);
        }
        println!();
    }
}

fn fig14() {
    println!("Fig. 14 — cumulative optimization steps (simulated seconds, speedup vs base)");
    for (width, series) in fig14_data(&FIG14_SIZES) {
        println!("  {width}²:");
        let base = series[0].1;
        for (name, s) in series {
            println!("    {:<55} {} ({:>5.2}x)", name, fmt_time(s), base / s);
        }
    }
    println!("paper shape: all steps 1.15–9.04x over base at 8192²; transfer+fusion hurts below 4096²; reduction & vectorization+border give the big wins\n");
}

fn fig15() {
    println!("Fig. 15 — reduction tail strategies (simulated seconds)");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "size", "unroll 1", "unroll 2", "no unroll"
    );
    for (w, one, two, none) in fig15_data(&FIG14_SIZES) {
        println!(
            "{w:>9}² {} {} {}",
            fmt_time(one),
            fmt_time(two),
            fmt_time(none)
        );
    }
    println!("paper shape: unrolling ONE wavefront beats unrolling two (extra barrier)\n");
}

fn fig16() {
    println!("Fig. 16 — reduction on CPU (incl. pEdge transfer) vs on GPU");
    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "size", "CPU", "GPU", "speedup"
    );
    for (w, cpu, gpu) in fig16_data(&FIG14_SIZES) {
        println!(
            "{w:>9}² {} {} {:>9.1}x",
            fmt_time(cpu),
            fmt_time(gpu),
            cpu / gpu
        );
    }
    println!("paper shape: GPU reduction up to 30.8x faster\n");
}

fn fig17() {
    println!("Fig. 17 — upscale border on CPU vs GPU (simulated seconds)");
    println!("{:>10} {:>12} {:>12} {:>8}", "size", "CPU", "GPU", "winner");
    for (w, cpu, gpu) in fig17_data(&FIG17_SIZES) {
        println!(
            "{w:>9}² {} {} {:>8}",
            fmt_time(cpu),
            fmt_time(gpu),
            if cpu <= gpu { "CPU" } else { "GPU" }
        );
    }
    let ctx = w8000();
    let candidates: Vec<usize> = (1..=32).map(|k| k * 64).collect();
    let crossover = sharpness_core::autotune::tune_border_crossover(&ctx, &candidates);
    println!("autotuned crossover: {crossover}² (paper: 768²)\n");
}

fn write_csvs(dir: &str) {
    use sharpness_bench::csv;
    std::fs::create_dir_all(dir).expect("create csv dir");
    let files: [(&str, String); 7] = [
        ("fig12.csv", csv::fig12_csv(&FIG12_SIZES)),
        ("fig13a.csv", csv::fig13a_csv(&FIG12_SIZES)),
        (
            "fig13b.csv",
            csv::fig13_gpu_csv(&FIG12_SIZES, OptConfig::none()),
        ),
        (
            "fig13c.csv",
            csv::fig13_gpu_csv(&FIG12_SIZES, OptConfig::all()),
        ),
        ("fig14.csv", csv::fig14_csv(&FIG14_SIZES)),
        ("fig15.csv", csv::fig15_csv(&FIG14_SIZES)),
        ("fig16.csv", csv::fig16_csv(&FIG14_SIZES)),
    ];
    for (name, content) in files {
        let path = std::path::Path::new(dir).join(name);
        std::fs::write(&path, content).expect("write csv");
        println!("wrote {}", path.display());
    }
    let path = std::path::Path::new(dir).join("fig17.csv");
    std::fs::write(&path, csv::fig17_csv(&FIG17_SIZES)).expect("write csv");
    println!("wrote {}", path.display());
}
