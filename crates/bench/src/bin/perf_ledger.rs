//! Inspects the perf ledger (`baselines/LEDGER.jsonl`) that the
//! wall-clock benches append to.
//!
//! ```text
//! perf_ledger                    # print the history, one line per series
//! perf_ledger --check            # recent-window-vs-history regression gate
//! perf_ledger --check --threshold 0.5 --path other/LEDGER.jsonl
//! ```
//!
//! `--check` exits nonzero when, for any series, the median of the last
//! [`ledger::RECENT_WINDOW`] entries is more than `threshold` (fraction,
//! default 0.25) below the median of its older entries — one noisy run
//! cannot flag a false regression; a persistent slowdown still does. The
//! report attributes the regression to the span whose share of the frame
//! grew. A ledger with fewer than two entries per series is reported but
//! never fails — wall-clock history needs runs to exist.

use std::path::PathBuf;
use std::process::ExitCode;

use sharpness_bench::ledger;

fn usage() -> ! {
    eprintln!("usage: perf_ledger [--check] [--threshold <fraction>] [--path <LEDGER.jsonl>]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut check = false;
    let mut threshold = 0.25f64;
    let mut path: PathBuf = ledger::default_path();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--threshold" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => threshold = t,
                None => usage(),
            },
            "--path" => match args.next() {
                Some(p) => path = PathBuf::from(p),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let entries = match ledger::load(&path) {
        Ok(e) => e,
        Err(err) => {
            eprintln!("perf_ledger: cannot read {}: {err}", path.display());
            // A missing ledger is not a regression — benches simply have
            // not run yet on this checkout.
            return if check {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };
    println!("perf ledger {} — {} entries", path.display(), entries.len());

    if !check {
        for e in &entries {
            println!(
                "  {} {:>8.2} frames/s  host [{}]",
                e.key(),
                e.frames_per_s,
                e.host
            );
        }
        return ExitCode::SUCCESS;
    }

    let outcome = ledger::check(&entries, threshold);
    print!("{}", outcome.report);
    if outcome.regressions > 0 {
        eprintln!(
            "perf_ledger: {} series regressed more than {:.0}% below their median",
            outcome.regressions,
            threshold * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "perf_ledger: no series regressed past {:.0}%",
        threshold * 100.0
    );
    ExitCode::SUCCESS
}
