//! Model ablations: how sensitive are the paper's conclusions to the
//! device parameters the simulator assumes?
//!
//! DESIGN.md calls out the load-bearing model constants — coalescing
//! factors (drives the vectorization win), launch overhead (drives the
//! small-image behaviour and the border crossover), PCI-E bandwidth
//! (drives the data-transfer optimization and the reduction/border
//! CPU-vs-GPU splits). Each sweep here perturbs exactly one constant and
//! re-measures the affected experiment, so a reviewer can see which
//! conclusions are robust and which are testbed-specific.

use sharpness_core::autotune::tune_border_crossover;
use sharpness_core::gpu::{GpuPipeline, OptConfig};
use sharpness_core::params::SharpnessParams;
use simgpu::context::Context;
use simgpu::device::DeviceSpec;

use crate::workload;

/// Runs the optimized and base pipelines on a modified device, returning
/// `(base_s, opt_s)`.
fn run_pair(dev: DeviceSpec, width: usize) -> (f64, f64) {
    let img = workload(width);
    let params = SharpnessParams::default();
    let base = GpuPipeline::new(Context::new(dev.clone()), params, OptConfig::none())
        .run(&img)
        .expect("base run")
        .total_s;
    let opt = GpuPipeline::new(Context::new(dev), params, OptConfig::all())
        .run(&img)
        .expect("opt run")
        .total_s;
    (base, opt)
}

/// Sweep of the vector-access coalescing factor: the vectorization win
/// (Section V-D) exists only while `vload4` coalesces better than scalar
/// stencil access. Returns `(factor, opt_over_base)` rows.
pub fn sweep_coalesce_vector(width: usize, factors: &[f64]) -> Vec<(f64, f64)> {
    factors
        .iter()
        .map(|&f| {
            let mut dev = DeviceSpec::firepro_w8000();
            dev.coalesce_vector = f;
            let (base, opt) = run_pair(dev, width);
            (f, base / opt)
        })
        .collect()
}

/// Sweep of the kernel-launch overhead: fusion's value and the border
/// crossover both hinge on it. Returns
/// `(launch_us, opt_over_base_at_width, border_crossover)` rows.
pub fn sweep_launch_overhead(width: usize, launch_us: &[f64]) -> Vec<(f64, f64, usize)> {
    let candidates: Vec<usize> = (1..=32).map(|k| k * 64).collect();
    launch_us
        .iter()
        .map(|&us| {
            let mut dev = DeviceSpec::firepro_w8000();
            dev.launch_overhead_s = us * 1e-6;
            let (base, opt) = run_pair(dev.clone(), width);
            let crossover = tune_border_crossover(&Context::new(dev), &candidates);
            (us, base / opt, crossover)
        })
        .collect()
}

/// Sweep of the PCI-E bulk bandwidth: the transfer optimization and the
/// CPU-vs-GPU stage splits are bandwidth stories. Returns
/// `(gbps, base_s, opt_s)` rows.
pub fn sweep_pcie_bandwidth(width: usize, gbps: &[f64]) -> Vec<(f64, f64, f64)> {
    gbps.iter()
        .map(|&bw| {
            let mut dev = DeviceSpec::firepro_w8000();
            dev.transfer.bulk_bw = bw * 1e9;
            dev.transfer.rect_bw = bw * 1e9;
            dev.transfer.map_bw = bw * 1e9 * (5.2 / 6.0); // keep the mode ratio
            let (base, opt) = run_pair(dev, width);
            (bw, base, opt)
        })
        .collect()
}

/// Sweep of the barrier stall cost: the Fig. 15 unrolling gap scales with
/// it. Returns `(stall_cycles, unroll1_s, unroll2_s, no_unroll_s)` rows.
pub fn sweep_barrier_cost(n: usize, stalls: &[f64]) -> Vec<(f64, f64, f64, f64)> {
    use sharpness_core::gpu::ablate::reduction_gpu_time;
    use sharpness_core::gpu::kernels::reduction::ReductionStrategy;
    stalls
        .iter()
        .map(|&cycles| {
            let mut dev = DeviceSpec::firepro_w8000();
            dev.barrier_stall_cycles = cycles;
            let ctx = Context::new(dev);
            (
                cycles,
                reduction_gpu_time(&ctx, n, ReductionStrategy::UnrollOne, usize::MAX),
                reduction_gpu_time(&ctx, n, ReductionStrategy::UnrollTwo, usize::MAX),
                reduction_gpu_time(&ctx, n, ReductionStrategy::NoUnroll, usize::MAX),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectorization_win_grows_with_coalescing_gap() {
        let rows = sweep_coalesce_vector(256, &[0.55, 0.7, 0.95]);
        // opt/base must improve as vector accesses coalesce better.
        assert!(rows[2].1 > rows[0].1, "{rows:?}");
    }

    #[test]
    fn launch_overhead_pushes_border_crossover_up() {
        let rows = sweep_launch_overhead(256, &[5.0, 40.0]);
        let (cheap, expensive) = (rows[0].2, rows[1].2);
        assert!(
            expensive > cheap,
            "costlier launches must favour the CPU border: {cheap} vs {expensive}"
        );
    }

    #[test]
    fn faster_pcie_compresses_totals() {
        let rows = sweep_pcie_bandwidth(256, &[3.0, 12.0]);
        assert!(rows[1].1 < rows[0].1); // base faster with faster bus
        assert!(rows[1].2 < rows[0].2); // opt too
    }

    #[test]
    fn barrier_cost_widens_unroll_gap() {
        let rows = sweep_barrier_cost(1024 * 1024, &[16.0, 256.0]);
        let gap_small = rows[0].3 - rows[0].1; // no-unroll minus unroll1
        let gap_big = rows[1].3 - rows[1].1;
        assert!(gap_big > gap_small, "{rows:?}");
        // Ordering holds at both extremes.
        for (_, one, two, none) in rows {
            assert!(one <= two && two <= none);
        }
    }
}
