//! Minimal JSON emission for the wall-clock benches.
//!
//! The self-timed benches (`megapass_wallclock`, `throughput_wallclock`)
//! record their measurements in `BENCH_<n>.json` files at the repository
//! root so CI and the README table have machine-readable numbers. The
//! schema is one object per measurement: square image size, schedule
//! label, achieved frames per second, and the speedup over the monolithic
//! reference at the same size. Hand-rolled (no serde in the dependency
//! closure).

use std::fmt::Write as _;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Square image width (pixels).
    pub width: usize,
    /// Human-readable schedule label, e.g. `monolithic` or `banded(512)`.
    pub schedule: String,
    /// Achieved wall-clock frames per second.
    pub frames_per_s: f64,
    /// Throughput relative to the monolithic reference at this size
    /// (1.0 for the reference itself).
    pub speedup_vs_monolithic: f64,
    /// Kernel span backend active during the measurement (`autovec`,
    /// `sse2`, or `avx2`; see [`sharpness_core::simd`]).
    pub backend: String,
}

impl BenchRow {
    /// A row stamped with the currently active kernel backend.
    pub fn with_active_backend(
        width: usize,
        schedule: String,
        frames_per_s: f64,
        speedup_vs_monolithic: f64,
    ) -> Self {
        BenchRow {
            width,
            schedule,
            frames_per_s,
            speedup_vs_monolithic,
            backend: sharpness_core::simd::active_backend().label().to_string(),
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders the bench result document. The `host` object records the
/// detected CPU features and whether the explicit-SIMD backend was
/// compiled in, so a committed baseline says what machine produced it.
pub fn render(bench: &str, rows: &[BenchRow]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"bench\": \"{}\",\n  \"host\": {{\"cpu_features\": \"{}\", \
         \"simd_compiled\": {}}},\n  \"rows\": [",
        esc(bench),
        esc(sharpness_core::simd::host_features()),
        sharpness_core::simd::simd_compiled(),
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"width\": {}, \"schedule\": \"{}\", \"backend\": \"{}\", \
             \"frames_per_s\": {:.6}, \"speedup_vs_monolithic\": {:.4}}}",
            r.width,
            esc(&r.schedule),
            esc(&r.backend),
            r.frames_per_s,
            r.speedup_vs_monolithic
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes the bench result document to `path`.
///
/// # Errors
/// Propagates the underlying I/O error.
pub fn write(path: &str, bench: &str, rows: &[BenchRow]) -> std::io::Result<()> {
    std::fs::write(path, render(bench, rows))
}

/// One offered load measured by the service bench (`BENCH_9_service.json`
/// schema): outcome counters, wall + simulated latency quantiles, and the
/// speedup over serving the same stream with per-request plan
/// preparation (no cache, no coalescing).
#[derive(Debug, Clone)]
pub struct ServiceRow {
    /// Offered-load label, e.g. `gap=500us`.
    pub label: String,
    /// Requests in the offered stream.
    pub requests: u64,
    /// Requests served / admitted-then-queued-at-peak / shed.
    pub served: u64,
    /// High-water mark of queued requests.
    pub peak_queued: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Batches executed (and how many requests rode along).
    pub batches: u64,
    /// Wall-clock served frames per second.
    pub frames_per_s: f64,
    /// Speedup over the per-request-plan-preparation baseline on the same
    /// stream (the number batching must keep above 1.0).
    pub speedup_vs_unbatched: f64,
    /// Wall service latency p50/p99, milliseconds.
    pub wall_p50_ms: f64,
    /// See `wall_p50_ms`.
    pub wall_p99_ms: f64,
    /// Simulated arrival→completion latency p50/p99, milliseconds.
    pub sim_p50_ms: f64,
    /// See `sim_p50_ms`.
    pub sim_p99_ms: f64,
    /// Kernel span backend active during the measurement.
    pub backend: String,
}

/// Renders the service bench document (same host header as [`render`],
/// service-schema rows).
pub fn render_service(bench: &str, rows: &[ServiceRow]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"bench\": \"{}\",\n  \"host\": {{\"cpu_features\": \"{}\", \
         \"simd_compiled\": {}}},\n  \"rows\": [",
        esc(bench),
        esc(sharpness_core::simd::host_features()),
        sharpness_core::simd::simd_compiled(),
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"load\": \"{}\", \"requests\": {}, \"served\": {}, \
             \"queued_peak\": {}, \"shed\": {}, \"batches\": {}, \
             \"frames_per_s\": {:.6}, \"speedup_vs_unbatched\": {:.4}, \
             \"wall_p50_ms\": {:.6}, \"wall_p99_ms\": {:.6}, \
             \"sim_p50_ms\": {:.6}, \"sim_p99_ms\": {:.6}, \"backend\": \"{}\"}}",
            esc(&r.label),
            r.requests,
            r.served,
            r.peak_queued,
            r.shed,
            r.batches,
            r.frames_per_s,
            r.speedup_vs_unbatched,
            r.wall_p50_ms,
            r.wall_p99_ms,
            r.sim_p50_ms,
            r.sim_p99_ms,
            esc(&r.backend),
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes the service bench document to `path`.
///
/// # Errors
/// Propagates the underlying I/O error.
pub fn write_service(path: &str, bench: &str, rows: &[ServiceRow]) -> std::io::Result<()> {
    std::fs::write(path, render_service(bench, rows))
}

/// One `(device, shape)` measurement of the model-based schedule tuner
/// (`BENCH_10.json` schema): what the search picked, how fast it walked
/// the space, whether the guided walk agreed with the exhaustive one,
/// and the simulated speedup of the tuned schedule over the paper's
/// hand-tuned default.
#[derive(Debug, Clone)]
pub struct TuneRow {
    /// Device preset name the candidates were costed on.
    pub device: String,
    /// Image width the search tuned for.
    pub width: usize,
    /// Image height the search tuned for.
    pub height: usize,
    /// Winning flag set, e.g. `kf+red+vec+oth`.
    pub flags: String,
    /// Winning reduction strategy label.
    pub strategy: String,
    /// Candidates the exhaustive walk evaluated.
    pub candidates: usize,
    /// Wall-clock candidates per second of the exhaustive walk.
    pub candidates_per_s: f64,
    /// Wall-clock microseconds per candidate (the ≤ 1000 us budget).
    pub us_per_candidate: f64,
    /// Whether the guided walk's predicted seconds are `.to_bits()`-equal
    /// to the exhaustive argmin's.
    pub guided_agrees: bool,
    /// Simulated speedup of the tuned schedule over the paper default
    /// (`OptConfig::all()` + `Tuning::default()`); deterministic.
    pub speedup_vs_default: f64,
}

/// Renders the tuner bench document (same host header as [`render`],
/// tuner-schema rows).
pub fn render_tune(bench: &str, rows: &[TuneRow]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"bench\": \"{}\",\n  \"host\": {{\"cpu_features\": \"{}\", \
         \"simd_compiled\": {}}},\n  \"rows\": [",
        esc(bench),
        esc(sharpness_core::simd::host_features()),
        sharpness_core::simd::simd_compiled(),
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"device\": \"{}\", \"width\": {}, \"height\": {}, \
             \"flags\": \"{}\", \"strategy\": \"{}\", \"candidates\": {}, \
             \"candidates_per_s\": {:.1}, \"us_per_candidate\": {:.3}, \
             \"guided_agrees\": {}, \"speedup_vs_default\": {:.4}}}",
            esc(&r.device),
            r.width,
            r.height,
            esc(&r.flags),
            esc(&r.strategy),
            r.candidates,
            r.candidates_per_s,
            r.us_per_candidate,
            r.guided_agrees,
            r.speedup_vs_default,
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes the tuner bench document to `path`.
///
/// # Errors
/// Propagates the underlying I/O error.
pub fn write_tune(path: &str, bench: &str, rows: &[TuneRow]) -> std::io::Result<()> {
    std::fs::write(path, render_tune(bench, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_schema() {
        let rows = vec![
            BenchRow {
                width: 1024,
                schedule: "monolithic".into(),
                frames_per_s: 12.5,
                speedup_vs_monolithic: 1.0,
                backend: "autovec".into(),
            },
            BenchRow {
                width: 1024,
                schedule: "banded(512)".into(),
                frames_per_s: 15.0,
                speedup_vs_monolithic: 1.2,
                backend: "avx2".into(),
            },
        ];
        let doc = render("megapass_wallclock", &rows);
        assert!(doc.contains("\"bench\": \"megapass_wallclock\""));
        assert!(doc.contains("\"host\": {\"cpu_features\": \""), "{doc}");
        assert!(doc.contains("\"simd_compiled\": "), "{doc}");
        assert!(doc.contains("\"width\": 1024"));
        assert!(doc.contains("\"schedule\": \"banded(512)\""));
        assert!(doc.contains("\"backend\": \"avx2\""));
        assert!(doc.contains("\"speedup_vs_monolithic\": 1.2000"));
        // Balanced braces/brackets — crude well-formedness check.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn escapes_quotes() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn renders_valid_tune_schema() {
        let rows = vec![TuneRow {
            device: "FirePro W8000".into(),
            width: 1001,
            height: 701,
            flags: "kf+red+vec+oth".into(),
            strategy: "UnrollOne".into(),
            candidates: 768,
            candidates_per_s: 5000.0,
            us_per_candidate: 200.0,
            guided_agrees: true,
            speedup_vs_default: 1.101,
        }];
        let doc = render_tune("tune_model", &rows);
        assert!(doc.contains("\"bench\": \"tune_model\""));
        assert!(doc.contains("\"device\": \"FirePro W8000\""));
        assert!(doc.contains("\"guided_agrees\": true"));
        assert!(doc.contains("\"speedup_vs_default\": 1.1010"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn renders_valid_service_schema() {
        let rows = vec![
            ServiceRow {
                label: "gap=2000us".into(),
                requests: 256,
                served: 256,
                peak_queued: 4,
                shed: 0,
                batches: 90,
                frames_per_s: 400.0,
                speedup_vs_unbatched: 1.35,
                wall_p50_ms: 1.8,
                wall_p99_ms: 4.2,
                sim_p50_ms: 2.1,
                sim_p99_ms: 9.7,
                backend: "avx2".into(),
            },
            ServiceRow {
                label: "gap=125us".into(),
                requests: 256,
                served: 190,
                peak_queued: 61,
                shed: 66,
                batches: 40,
                frames_per_s: 520.0,
                speedup_vs_unbatched: 1.6,
                wall_p50_ms: 1.5,
                wall_p99_ms: 3.9,
                sim_p50_ms: 14.0,
                sim_p99_ms: 80.0,
                backend: "avx2".into(),
            },
        ];
        let doc = render_service("service_load", &rows);
        assert!(doc.contains("\"bench\": \"service_load\""));
        assert!(doc.contains("\"host\": {\"cpu_features\": \""), "{doc}");
        assert!(doc.contains("\"load\": \"gap=125us\""));
        assert!(doc.contains("\"shed\": 66"));
        assert!(doc.contains("\"speedup_vs_unbatched\": 1.3500"));
        assert!(doc.contains("\"sim_p99_ms\": 80.000000"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }
}
