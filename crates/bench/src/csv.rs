//! CSV export of the figure data, for plotting the reproduction next to
//! the paper's charts.
//!
//! `repro -- csv <dir>` writes one file per experiment; each function
//! here renders one figure's series. Plain `String` builders — no
//! serialization dependency needed for flat numeric tables.

use std::fmt::Write as _;

use crate::{
    fig12_data, fig13_gpu_data, fig13a_data, fig14_data, fig15_data, fig16_data, fig17_data,
};
use sharpness_core::gpu::OptConfig;

/// Fig. 12 rows: `size,cpu_s,base_s,opt_s,base_speedup,opt_speedup`.
pub fn fig12_csv(sizes: &[usize]) -> String {
    let mut out = String::from("size,cpu_s,base_s,opt_s,base_speedup,opt_speedup\n");
    for r in fig12_data(sizes) {
        let _ = writeln!(
            out,
            "{},{:.9},{:.9},{:.9},{:.3},{:.3}",
            r.width,
            r.cpu_s,
            r.base_s,
            r.opt_s,
            r.base_speedup(),
            r.opt_speedup()
        );
    }
    out
}

fn fractions_csv(data: Vec<(usize, Vec<(String, f64)>)>) -> String {
    // Column order from the largest size.
    let cats: Vec<String> = data
        .last()
        .map(|(_, c)| c.iter().map(|(n, _)| n.clone()).collect())
        .unwrap_or_default();
    let mut out = String::from("size");
    for c in &cats {
        let _ = write!(out, ",{}", c.replace(' ', "_"));
    }
    out.push('\n');
    for (w, row) in &data {
        let _ = write!(out, "{w}");
        for c in &cats {
            let f = row
                .iter()
                .find(|(n, _)| n == c)
                .map(|(_, f)| *f)
                .unwrap_or(0.0);
            let _ = write!(out, ",{f:.6}");
        }
        out.push('\n');
    }
    out
}

/// Fig. 13(a) stage fractions.
pub fn fig13a_csv(sizes: &[usize]) -> String {
    fractions_csv(fig13a_data(sizes))
}

/// Fig. 13(b)/(c) stage fractions for a GPU configuration.
pub fn fig13_gpu_csv(sizes: &[usize], opts: OptConfig) -> String {
    fractions_csv(fig13_gpu_data(sizes, opts))
}

/// Fig. 14 rows: `size,step,seconds,speedup_vs_base`.
pub fn fig14_csv(sizes: &[usize]) -> String {
    let mut out = String::from("size,step,seconds,speedup_vs_base\n");
    for (w, series) in fig14_data(sizes) {
        let base = series[0].1;
        for (name, s) in series {
            let _ = writeln!(out, "{w},{},{s:.9},{:.3}", name.replace(' ', "_"), base / s);
        }
    }
    out
}

/// Fig. 15 rows: `size,unroll_one_s,unroll_two_s,no_unroll_s`.
pub fn fig15_csv(sizes: &[usize]) -> String {
    let mut out = String::from("size,unroll_one_s,unroll_two_s,no_unroll_s\n");
    for (w, one, two, none) in fig15_data(sizes) {
        let _ = writeln!(out, "{w},{one:.9},{two:.9},{none:.9}");
    }
    out
}

/// Fig. 16 rows: `size,cpu_s,gpu_s,speedup`.
pub fn fig16_csv(sizes: &[usize]) -> String {
    let mut out = String::from("size,cpu_s,gpu_s,speedup\n");
    for (w, cpu, gpu) in fig16_data(sizes) {
        let _ = writeln!(out, "{w},{cpu:.9},{gpu:.9},{:.3}", cpu / gpu);
    }
    out
}

/// Fig. 17 rows: `size,cpu_s,gpu_s,winner`.
pub fn fig17_csv(sizes: &[usize]) -> String {
    let mut out = String::from("size,cpu_s,gpu_s,winner\n");
    for (w, cpu, gpu) in fig17_data(sizes) {
        let _ = writeln!(
            out,
            "{w},{cpu:.9},{gpu:.9},{}",
            if cpu <= gpu { "cpu" } else { "gpu" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_rect(csv: &str, cols: usize, rows: usize) {
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), rows + 1, "{csv}");
        for l in &lines {
            assert_eq!(l.split(',').count(), cols, "{l}");
        }
    }

    #[test]
    fn fig12_csv_shape() {
        assert_rect(&fig12_csv(&[64, 128]), 6, 2);
    }

    #[test]
    fn fig13_csvs_have_category_columns() {
        let csv = fig13a_csv(&[64]);
        assert!(csv.starts_with("size,"));
        assert!(csv.contains("strength_matrix"));
        let gpu = fig13_gpu_csv(&[64], OptConfig::none());
        assert!(gpu.contains("data_init"));
    }

    #[test]
    fn fig14_csv_has_five_steps_per_size() {
        let csv = fig14_csv(&[64]);
        assert_eq!(csv.trim_end().lines().count(), 1 + 5);
    }

    #[test]
    fn fig15_16_17_shapes() {
        assert_rect(&fig15_csv(&[64]), 4, 1);
        assert_rect(&fig16_csv(&[64]), 4, 1);
        assert_rect(&fig17_csv(&[64]), 4, 1);
    }

    #[test]
    fn numeric_fields_parse() {
        let csv = fig12_csv(&[64]);
        let row = csv.lines().nth(1).unwrap();
        for (i, field) in row.split(',').enumerate() {
            assert!(field.parse::<f64>().is_ok(), "field {i}: {field}");
        }
    }
}
