//! # sharpness-bench — harness regenerating the paper's tables and figures
//!
//! Each `figNN_*` function reruns the corresponding experiment of
//! *Optimizing Image Sharpening Algorithm on GPU* (ICPP 2015) against the
//! simulated AMD FirePro W8000 and the modeled Core i5-3470, returning the
//! series the paper plots. The `repro` binary prints them; `EXPERIMENTS.md`
//! records paper-vs-measured values.
//!
//! All times are *simulated model seconds* (deterministic on any host);
//! the Criterion benches under `benches/` measure the real wall-clock of
//! the Rust implementations separately.

#![warn(missing_docs)]

pub mod ablation;
pub mod benchjson;
pub mod csv;
pub mod ledger;

use imagekit::{generate, ImageF32};
use sharpness_core::cpu::CpuPipeline;
use sharpness_core::gpu::ablate;
use sharpness_core::gpu::kernels::reduction::ReductionStrategy;
use sharpness_core::gpu::{GpuPipeline, OptConfig};
use sharpness_core::params::SharpnessParams;
use sharpness_core::report::{classify_cpu_stage, classify_gpu_stage, RunReport};
use simgpu::context::Context;
use simgpu::device::{CpuSpec, DeviceSpec};

/// The square image widths of Figs. 12–13 (256² … 4096²).
pub const FIG12_SIZES: [usize; 5] = [256, 512, 1024, 2048, 4096];
/// The square image widths of Figs. 14–16.
pub const FIG14_SIZES: [usize; 3] = [256, 1024, 4096];
/// The square image widths of Fig. 17 (around the border crossover).
pub const FIG17_SIZES: [usize; 4] = [448, 576, 704, 832];
/// Seed for the deterministic workload images.
pub const WORKLOAD_SEED: u64 = 2015;

/// Builds the standard workload image for a given square size.
pub fn workload(width: usize) -> ImageF32 {
    generate::natural(width, width, WORKLOAD_SEED)
}

/// Fresh W8000 context (validation off — measurement runs).
pub fn w8000() -> Context {
    Context::new(DeviceSpec::firepro_w8000())
}

/// One row of Fig. 12: total simulated runtimes and derived speedups.
#[derive(Debug, Clone, Copy)]
pub struct Fig12Row {
    /// Square image width.
    pub width: usize,
    /// CPU version, seconds.
    pub cpu_s: f64,
    /// Base GPU version, seconds.
    pub base_s: f64,
    /// Fully optimized GPU version, seconds.
    pub opt_s: f64,
}

impl Fig12Row {
    /// Speedup of the base GPU version over the CPU version.
    pub fn base_speedup(&self) -> f64 {
        self.cpu_s / self.base_s
    }
    /// Speedup of the optimized GPU version over the CPU version.
    pub fn opt_speedup(&self) -> f64 {
        self.cpu_s / self.opt_s
    }
    /// Further speedup of the optimized over the base GPU version.
    pub fn opt_over_base(&self) -> f64 {
        self.base_s / self.opt_s
    }
}

/// Runs the CPU pipeline at `width` and returns the report.
pub fn run_cpu(width: usize) -> RunReport {
    let img = workload(width);
    CpuPipeline::new(SharpnessParams::default())
        .run(&img)
        .expect("cpu pipeline")
}

/// Runs the GPU pipeline at `width` with `opts` and returns the report.
pub fn run_gpu(width: usize, opts: OptConfig) -> RunReport {
    let img = workload(width);
    GpuPipeline::new(w8000(), SharpnessParams::default(), opts)
        .run(&img)
        .expect("gpu pipeline")
}

/// Fig. 12: CPU vs base GPU vs optimized GPU across image sizes.
pub fn fig12_data(sizes: &[usize]) -> Vec<Fig12Row> {
    sizes
        .iter()
        .map(|&width| Fig12Row {
            width,
            cpu_s: run_cpu(width).total_s,
            base_s: run_gpu(width, OptConfig::none()).total_s,
            opt_s: run_gpu(width, OptConfig::all()).total_s,
        })
        .collect()
}

/// Fig. 13(a): per-stage time fractions of the CPU version.
pub fn fig13a_data(sizes: &[usize]) -> Vec<(usize, Vec<(String, f64)>)> {
    sizes
        .iter()
        .map(|&width| {
            let r = run_cpu(width);
            let cats = r.by_category(classify_cpu_stage);
            let total = r.total_s;
            (
                width,
                cats.into_iter().map(|(c, s)| (c, s / total)).collect(),
            )
        })
        .collect()
}

/// Fig. 13(b)/(c): per-stage time fractions of a GPU version.
pub fn fig13_gpu_data(sizes: &[usize], opts: OptConfig) -> Vec<(usize, Vec<(String, f64)>)> {
    sizes
        .iter()
        .map(|&width| {
            let r = run_gpu(width, opts);
            let cats = r.by_category(classify_gpu_stage);
            let total = r.total_s;
            (
                width,
                cats.into_iter().map(|(c, s)| (c, s / total)).collect(),
            )
        })
        .collect()
}

/// Fig. 14: cumulative optimization steps; returns, per size, the
/// `(step name, seconds)` series in the paper's order.
pub fn fig14_data(sizes: &[usize]) -> Vec<(usize, Vec<(&'static str, f64)>)> {
    sizes
        .iter()
        .map(|&width| {
            let series = OptConfig::cumulative_steps()
                .into_iter()
                .map(|(name, opts)| (name, run_gpu(width, opts).total_s))
                .collect();
            (width, series)
        })
        .collect()
}

/// Fig. 15: reduction with one vs two unrolled wavefronts (plus the
/// barrier-per-step tree for context). Returns
/// `(width, unroll1_s, unroll2_s, no_unroll_s)` per size.
pub fn fig15_data(sizes: &[usize]) -> Vec<(usize, f64, f64, f64)> {
    let ctx = w8000();
    sizes
        .iter()
        .map(|&width| {
            let n = width * width;
            let one = ablate::reduction_gpu_time(&ctx, n, ReductionStrategy::UnrollOne, usize::MAX);
            let two = ablate::reduction_gpu_time(&ctx, n, ReductionStrategy::UnrollTwo, usize::MAX);
            let none = ablate::reduction_gpu_time(&ctx, n, ReductionStrategy::NoUnroll, usize::MAX);
            (width, one, two, none)
        })
        .collect()
}

/// Fig. 16: reduction on CPU (including the pEdge transfer) vs optimized
/// GPU reduction. Returns `(width, cpu_s, gpu_s)` per size.
pub fn fig16_data(sizes: &[usize]) -> Vec<(usize, f64, f64)> {
    let ctx = w8000();
    sizes
        .iter()
        .map(|&width| {
            let n = width * width;
            let cpu = ablate::reduction_cpu_time(&ctx, n);
            let gpu = ablate::reduction_gpu_time(&ctx, n, ReductionStrategy::UnrollOne, 4096);
            (width, cpu, gpu)
        })
        .collect()
}

/// Fig. 17: upscale border on CPU vs GPU around the crossover. Returns
/// `(width, cpu_s, gpu_s)` per size.
pub fn fig17_data(sizes: &[usize]) -> Vec<(usize, f64, f64)> {
    let ctx = w8000();
    sizes
        .iter()
        .map(|&width| {
            let cpu = ablate::border_cpu_time(&ctx, width, width);
            let gpu = ablate::border_gpu_time(&ctx, width, width);
            (width, cpu, gpu)
        })
        .collect()
}

/// Table I: the hardware platform comparison.
pub fn table1() -> String {
    let g = DeviceSpec::firepro_w8000();
    let c = CpuSpec::core_i5_3470();
    let mut s = String::new();
    s.push_str("Table I — experimental hardware platform specifications\n");
    s.push_str(&format!("{:<28}{:>20}{:>22}\n", "", g.name, c.name));
    s.push_str(&format!(
        "{:<28}{:>20}{:>22}\n",
        "Processor main frequency",
        format!("{:.2} GHz", g.clock_ghz),
        format!("{:.1} GHz", c.clock_ghz)
    ));
    s.push_str(&format!(
        "{:<28}{:>20}{:>22}\n",
        "Number of cores", g.total_lanes, 4
    ));
    s.push_str(&format!(
        "{:<28}{:>20}{:>22}\n",
        "Peak GFlops",
        format!("{:.2} TFlops", g.peak_gflops / 1000.0),
        "57.76 GFlops"
    ));
    s.push_str(&format!(
        "{:<28}{:>20}{:>22}\n",
        "Memory bandwidth",
        format!("{:.0} GB/s", g.mem_bw / 1e9),
        "25 GB/s"
    ));
    s
}

/// Formats seconds adaptively (µs/ms/s) for table output.
pub fn fmt_time(s: f64) -> String {
    if s < 1e-3 {
        format!("{:8.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:8.2} ms", s * 1e3)
    } else {
        format!("{:8.3} s ", s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_small_sizes_have_sane_shape() {
        let rows = fig12_data(&[256, 512]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.cpu_s > r.base_s,
                "GPU base should beat CPU at {}",
                r.width
            );
            assert!(
                r.opt_s <= r.base_s * 1.05,
                "opt should not regress at {}",
                r.width
            );
        }
        // Speedup grows with size.
        assert!(rows[1].opt_speedup() > rows[0].opt_speedup());
    }

    #[test]
    fn fig13_fractions_sum_to_one() {
        for (_, cats) in fig13a_data(&[256]) {
            let total: f64 = cats.iter().map(|(_, f)| f).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
        for (_, cats) in fig13_gpu_data(&[256], OptConfig::none()) {
            let total: f64 = cats.iter().map(|(_, f)| f).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fig15_unroll_one_wins() {
        for (w, one, two, none) in fig15_data(&[256, 1024]) {
            assert!(one < two, "{w}: unroll1 {one} < unroll2 {two}");
            assert!(two < none, "{w}: unroll2 {two} < no-unroll {none}");
        }
    }

    #[test]
    fn fig16_gpu_wins_at_scale() {
        let data = fig16_data(&[1024]);
        let (_, cpu, gpu) = data[0];
        assert!(gpu < cpu);
    }

    #[test]
    fn table1_mentions_both_machines() {
        let t = table1();
        assert!(t.contains("W8000"));
        assert!(t.contains("i5"));
    }

    #[test]
    fn fmt_time_ranges() {
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-2).contains("ms"));
        assert!(fmt_time(2.0).contains("s "));
    }
}
