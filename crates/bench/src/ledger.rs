//! The perf ledger: an append-only JSONL history of wall-clock bench runs.
//!
//! `BENCH_<n>.json` snapshots are write-only — each re-run overwrites the
//! last. The ledger keeps the *trajectory*: every `megapass_wallclock` /
//! `throughput_wallclock` run appends one [`LedgerEntry`] per measured
//! configuration to `baselines/LEDGER.jsonl` (host fingerprint, backend,
//! schedule, frames/s, per-phase span shares), and `perf_ledger --check`
//! compares the newest entry of each series against its history,
//! attributing a regression to the phase whose share of the frame grew.
//!
//! Hand-rolled JSON both ways (no serde in the dependency closure); the
//! parser only promises to read lines this module's emitter wrote.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use sharpness_core::gpu::{GpuPipeline, OptConfig, Schedule};
use sharpness_core::params::SharpnessParams;
use simgpu::context::Context;
use simgpu::device::DeviceSpec;
use simgpu::span::{aggregate, SpanKind};

use crate::benchjson::esc;

/// One measured configuration appended to the ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Unix seconds when the measurement was taken.
    pub ts: u64,
    /// Bench name (`megapass_wallclock`, `throughput_wallclock`, ...).
    pub bench: String,
    /// Host fingerprint: detected CPU features.
    pub host: String,
    /// Active kernel span backend (`autovec`, `sse2`, `avx2`).
    pub backend: String,
    /// Schedule label (`monolithic`, `banded(auto)`, `engine[4]`, ...).
    pub schedule: String,
    /// Square frame width.
    pub width: usize,
    /// Achieved wall-clock frames per second.
    pub frames_per_s: f64,
    /// Per-phase share of the frame's wall-clock time (0..1), from a
    /// spans-enabled observation frame. Empty when not collected.
    pub phases: Vec<(String, f64)>,
}

impl LedgerEntry {
    /// Stamps an entry with the current time, host fingerprint and active
    /// backend.
    pub fn now(
        bench: &str,
        schedule: &str,
        width: usize,
        frames_per_s: f64,
        phases: Vec<(String, f64)>,
    ) -> Self {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        LedgerEntry {
            ts,
            bench: bench.to_string(),
            host: sharpness_core::simd::host_features().to_string(),
            backend: sharpness_core::simd::active_backend().label().to_string(),
            schedule: schedule.to_string(),
            width,
            frames_per_s,
            phases,
        }
    }

    /// The series key: entries with the same key are comparable runs.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.bench, self.schedule, self.backend, self.width
        )
    }

    /// Renders the entry as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut phases = String::from("{");
        for (i, (name, share)) in self.phases.iter().enumerate() {
            if i > 0 {
                phases.push(',');
            }
            phases.push_str(&format!("\"{}\":{:.6}", esc(name), share));
        }
        phases.push('}');
        format!(
            "{{\"ts\":{},\"bench\":\"{}\",\"host\":\"{}\",\"backend\":\"{}\",\
             \"schedule\":\"{}\",\"width\":{},\"frames_per_s\":{:.6},\"phases\":{}}}",
            self.ts,
            esc(&self.bench),
            esc(&self.host),
            esc(&self.backend),
            esc(&self.schedule),
            self.width,
            self.frames_per_s,
            phases,
        )
    }

    /// Parses a line this module's emitter wrote. Returns `None` for
    /// anything malformed.
    pub fn parse(line: &str) -> Option<LedgerEntry> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        let str_field = |key: &str| -> Option<String> {
            let pat = format!("\"{key}\":\"");
            let start = line.find(&pat)? + pat.len();
            let rest = &line[start..];
            let mut out = String::new();
            let mut chars = rest.chars();
            while let Some(c) = chars.next() {
                match c {
                    '"' => return Some(out),
                    '\\' => out.push(chars.next()?),
                    c => out.push(c),
                }
            }
            None
        };
        let num_field = |key: &str| -> Option<f64> {
            let pat = format!("\"{key}\":");
            let start = line.find(&pat)? + pat.len();
            let rest: String = line[start..]
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
                .collect();
            rest.parse().ok()
        };
        let phases = {
            let pat = "\"phases\":{";
            let mut out = Vec::new();
            if let Some(start) = line.find(pat) {
                let rest = &line[start + pat.len()..];
                let inner = &rest[..rest.find('}')?];
                for pair in inner.split(',').filter(|p| !p.is_empty()) {
                    // rsplit: phase names may themselves contain ':'
                    // (e.g. `megapass:A`), the share never does.
                    let (name, share) = pair.rsplit_once(':')?;
                    out.push((name.trim_matches('"').to_string(), share.parse().ok()?));
                }
            }
            out
        };
        Some(LedgerEntry {
            ts: num_field("ts")? as u64,
            bench: str_field("bench")?,
            host: str_field("host")?,
            backend: str_field("backend")?,
            schedule: str_field("schedule")?,
            width: num_field("width")? as usize,
            frames_per_s: num_field("frames_per_s")?,
            phases,
        })
    }
}

/// The committed ledger location, `baselines/LEDGER.jsonl`.
pub fn default_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../baselines/LEDGER.jsonl"
    ))
}

/// Appends entries to the ledger at `path`, creating it if needed.
///
/// # Errors
/// Propagates the underlying I/O error.
pub fn append(path: &Path, entries: &[LedgerEntry]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for e in entries {
        writeln!(f, "{}", e.to_jsonl())?;
    }
    Ok(())
}

/// Loads every parseable entry from the ledger, in file (append) order.
///
/// # Errors
/// Propagates the underlying I/O error; malformed lines are skipped.
pub fn load(path: &Path) -> std::io::Result<Vec<LedgerEntry>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text.lines().filter_map(LedgerEntry::parse).collect())
}

/// Runs one spans-enabled observation frame and returns each depth-1
/// phase's share of the frame's wall-clock time — the attribution data a
/// ledger entry carries. Wall-clock only: the observation frame is *not*
/// part of the timed measurement.
pub fn phase_shares(width: usize, schedule: Schedule) -> Vec<(String, f64)> {
    let img = crate::workload(width);
    let ctx = Context::new(DeviceSpec::firepro_w8000()).with_spans();
    let pipe =
        GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all()).with_schedule(schedule);
    let Ok(mut plan) = pipe.prepared(width, width) else {
        return Vec::new();
    };
    let mut out = vec![0.0f32; width * width];
    if plan.run_into(&img, &mut out).is_err() {
        return Vec::new();
    }
    let spans = plan.spans();
    let frame_wall: f64 = spans
        .iter()
        .find(|s| s.kind == SpanKind::Frame)
        .map(|s| s.wall_s())
        .unwrap_or(0.0);
    if frame_wall <= 0.0 {
        return Vec::new();
    }
    aggregate(&spans)
        .into_iter()
        .filter(|a| a.kind == SpanKind::Phase && a.path.matches('/').count() == 1)
        .map(|a| {
            let name = a.path.split('/').next_back().unwrap_or("").to_string();
            (name, a.wall_s / frame_wall)
        })
        .collect()
}

/// The outcome of a history check: the printed report and how many series
/// regressed past the threshold.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The human-readable report.
    pub report: String,
    /// Number of series whose recent window regressed past the threshold.
    pub regressions: usize,
}

/// How many trailing entries form a series' "recent" sample. Comparing the
/// *median* of the last few runs (rather than the single newest entry)
/// keeps one noisy run — a loaded host, a thermal excursion — from flagging
/// a false regression: a real slowdown persists across runs, noise does
/// not. Clamped so at least one entry is always left as history.
pub const RECENT_WINDOW: usize = 3;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Compares the recent window of every series against its history: a
/// series regresses when the median of its last [`RECENT_WINDOW`] entries
/// falls more than `threshold` (a fraction, e.g. `0.25`) below the median
/// of the older entries. The report attributes each regression to the
/// phase whose share of the frame grew the most since the previous run.
pub fn check(entries: &[LedgerEntry], threshold: f64) -> CheckOutcome {
    use std::collections::BTreeMap;
    let mut series: BTreeMap<String, Vec<&LedgerEntry>> = BTreeMap::new();
    for e in entries {
        series.entry(e.key()).or_default().push(e);
    }
    let mut report = String::new();
    let mut regressions = 0;
    for (key, runs) in &series {
        let newest = runs.last().expect("non-empty series");
        if runs.len() == 1 {
            report.push_str(&format!(
                "  {key}: first entry ({:.2} frames/s), no history yet\n",
                newest.frames_per_s
            ));
            continue;
        }
        // Short histories shrink the window so ≥1 history entry remains.
        let k = RECENT_WINDOW.min(runs.len() - 1);
        let recent = median(
            runs[runs.len() - k..]
                .iter()
                .map(|e| e.frames_per_s)
                .collect(),
        );
        let base = median(
            runs[..runs.len() - k]
                .iter()
                .map(|e| e.frames_per_s)
                .collect(),
        );
        let delta = recent / base - 1.0;
        if delta < -threshold {
            regressions += 1;
            // Attribute: which phase's share grew the most vs the prior
            // run that carried phase data?
            let prev = runs[..runs.len() - 1]
                .iter()
                .rev()
                .find(|e| !e.phases.is_empty());
            let culprit = prev.and_then(|p| {
                newest
                    .phases
                    .iter()
                    .map(|(name, share)| {
                        let before = p
                            .phases
                            .iter()
                            .find(|(n, _)| n == name)
                            .map(|(_, s)| *s)
                            .unwrap_or(0.0);
                        (name.clone(), share - before, *share)
                    })
                    .max_by(|a, b| a.1.total_cmp(&b.1))
            });
            report.push_str(&format!(
                "  REGRESSION {key}: median of last {k} = {recent:.2} frames/s \
                 vs history median {base:.2} ({:+.1}%)\n",
                delta * 100.0
            ));
            match culprit {
                Some((name, grew, share)) if grew > 0.0 => report.push_str(&format!(
                    "    attributed to span `{name}`: share grew {:+.1} points to {:.1}%\n",
                    grew * 100.0,
                    share * 100.0
                )),
                _ => report.push_str("    no span attribution available (no phase data)\n"),
            }
        } else {
            report.push_str(&format!(
                "  ok {key}: median of last {k} = {recent:.2} frames/s \
                 vs history median {base:.2} ({:+.1}%)\n",
                delta * 100.0
            ));
        }
    }
    CheckOutcome {
        report,
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fps: f64, phases: Vec<(String, f64)>) -> LedgerEntry {
        LedgerEntry {
            ts: 1700000000,
            bench: "megapass_wallclock".into(),
            host: "sse2 avx2".into(),
            backend: "avx2".into(),
            schedule: "banded(auto)".into(),
            width: 1024,
            frames_per_s: fps,
            phases,
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let e = entry(
            12.345678,
            vec![("upload".into(), 0.125), ("megapass:A".into(), 0.5)],
        );
        let line = e.to_jsonl();
        let back = LedgerEntry::parse(&line).expect("parses");
        assert_eq!(back, e);
        // Malformed lines are rejected, not mis-parsed.
        assert!(LedgerEntry::parse("").is_none());
        assert!(LedgerEntry::parse("{\"ts\":1}").is_none());
        assert!(LedgerEntry::parse("not json").is_none());
    }

    #[test]
    fn append_and_load_accumulate() {
        let path = std::env::temp_dir().join(format!("ledger-{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        append(&path, &[entry(10.0, vec![])]).unwrap();
        append(&path, &[entry(11.0, vec![])]).unwrap();
        let all = load(&path).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].frames_per_s, 11.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_flags_sustained_regression_and_attributes_phase() {
        let healthy = vec![
            entry(10.0, vec![("sobel".into(), 0.2), ("sharpen".into(), 0.3)]),
            entry(10.2, vec![("sobel".into(), 0.2), ("sharpen".into(), 0.3)]),
            entry(9.9, vec![("sobel".into(), 0.21), ("sharpen".into(), 0.3)]),
            entry(10.1, vec![("sobel".into(), 0.2), ("sharpen".into(), 0.3)]),
        ];
        let out = check(&healthy, 0.25);
        assert_eq!(out.regressions, 0, "{}", out.report);
        assert!(out.report.contains("ok "), "{}", out.report);

        // A slowdown persisting across a full recent window flags, and the
        // sobel share keeps growing so the newest-vs-previous attribution
        // names it.
        let mut regressed = healthy.clone();
        for share in [0.4, 0.5, 0.6].into_iter().take(RECENT_WINDOW) {
            regressed.push(entry(
                5.0,
                vec![("sobel".into(), share), ("sharpen".into(), 0.2)],
            ));
        }
        let out = check(&regressed, 0.25);
        assert_eq!(out.regressions, 1, "{}", out.report);
        assert!(out.report.contains("REGRESSION"), "{}", out.report);
        assert!(out.report.contains("span `sobel`"), "{}", out.report);
    }

    #[test]
    fn one_noisy_run_does_not_flag() {
        // Regression test for the false-positive mode: the check used to
        // compare only the single newest entry, so one loaded-host run
        // tripped the gate. The recent-window median absorbs it.
        let mut runs = vec![
            entry(10.0, vec![]),
            entry(10.2, vec![]),
            entry(9.9, vec![]),
            entry(10.1, vec![]),
        ];
        runs.push(entry(5.0, vec![])); // a single outlier
        let out = check(&runs, 0.25);
        assert_eq!(out.regressions, 0, "{}", out.report);
    }

    #[test]
    fn short_histories_shrink_the_window() {
        // Two entries: the window clamps to 1 and the newest is compared
        // against the only prior entry — a real cliff still flags.
        let out = check(&[entry(10.0, vec![]), entry(5.0, vec![])], 0.25);
        assert_eq!(out.regressions, 1, "{}", out.report);
        // Three entries, both recent ones healthy: clean.
        let out = check(
            &[entry(10.0, vec![]), entry(9.9, vec![]), entry(10.1, vec![])],
            0.25,
        );
        assert_eq!(out.regressions, 0, "{}", out.report);
    }

    #[test]
    fn median_handles_even_and_odd_lengths() {
        assert_eq!(median(vec![]), 0.0);
        assert_eq!(median(vec![7.0]), 7.0);
        assert_eq!(median(vec![1.0, 3.0]), 2.0);
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn check_without_history_is_clean() {
        let out = check(&[entry(10.0, vec![])], 0.25);
        assert_eq!(out.regressions, 0);
        assert!(out.report.contains("no history yet"), "{}", out.report);
    }

    #[test]
    fn phase_shares_cover_the_schedule() {
        let shares = phase_shares(64, Schedule::Banded(32));
        let names: Vec<&str> = shares.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"upload"), "{names:?}");
        assert!(names.contains(&"megapass:A"), "{names:?}");
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!(total > 0.0 && total <= 1.5, "total share {total}");
    }
}
