//! Interleaved RGB images and channel plumbing for the multi-channel
//! sharpening extension.
//!
//! The paper's pipeline is single-channel. The common production uses it
//! mentions (TV, camera) sharpen colour frames either per-channel or on a
//! luma plane; this module provides the conversions both modes need.

use crate::image::{ImageF32, ImageU8};

/// Interleaved 8-bit RGB image (`[r, g, b, r, g, b, ...]`, row major).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgbImageU8 {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl RgbImageU8 {
    /// Creates a black image.
    pub fn zeros(width: usize, height: usize) -> Self {
        RgbImageU8 {
            width,
            height,
            data: vec![0; width * height * 3],
        }
    }

    /// Wraps an interleaved byte vector.
    ///
    /// # Panics
    /// If `data.len() != width * height * 3`.
    pub fn from_vec(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), width * height * 3, "RGB byte count mismatch");
        RgbImageU8 {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw interleaved bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Pixel accessor: `(r, g, b)` at `(x, y)`.
    pub fn get(&self, x: usize, y: usize) -> (u8, u8, u8) {
        let i = (y * self.width + x) * 3;
        (self.data[i], self.data[i + 1], self.data[i + 2])
    }

    /// Pixel mutator.
    pub fn set(&mut self, x: usize, y: usize, rgb: (u8, u8, u8)) {
        let i = (y * self.width + x) * 3;
        self.data[i] = rgb.0;
        self.data[i + 1] = rgb.1;
        self.data[i + 2] = rgb.2;
    }

    /// Splits into three planar `f32` channels `(r, g, b)`.
    pub fn split_channels(&self) -> (ImageF32, ImageF32, ImageF32) {
        let n = self.width * self.height;
        let mut r = Vec::with_capacity(n);
        let mut g = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        for px in self.data.chunks_exact(3) {
            r.push(f32::from(px[0]));
            g.push(f32::from(px[1]));
            b.push(f32::from(px[2]));
        }
        (
            ImageF32::from_vec(self.width, self.height, r),
            ImageF32::from_vec(self.width, self.height, g),
            ImageF32::from_vec(self.width, self.height, b),
        )
    }

    /// Recombines planar `f32` channels (clamped to `[0,255]`).
    ///
    /// # Panics
    /// If channel shapes differ.
    pub fn merge_channels(r: &ImageF32, g: &ImageF32, b: &ImageF32) -> Self {
        assert_eq!(
            (r.width(), r.height()),
            (g.width(), g.height()),
            "channel shape mismatch"
        );
        assert_eq!(
            (r.width(), r.height()),
            (b.width(), b.height()),
            "channel shape mismatch"
        );
        let mut data = Vec::with_capacity(r.len() * 3);
        for i in 0..r.len() {
            data.push(r.pixels()[i].clamp(0.0, 255.0).round() as u8);
            data.push(g.pixels()[i].clamp(0.0, 255.0).round() as u8);
            data.push(b.pixels()[i].clamp(0.0, 255.0).round() as u8);
        }
        RgbImageU8 {
            width: r.width(),
            height: r.height(),
            data,
        }
    }

    /// BT.601 luma plane (`0.299 R + 0.587 G + 0.114 B`).
    pub fn to_luma(&self) -> ImageF32 {
        let mut data = Vec::with_capacity(self.width * self.height);
        for px in self.data.chunks_exact(3) {
            data.push(
                0.299 * f32::from(px[0]) + 0.587 * f32::from(px[1]) + 0.114 * f32::from(px[2]),
            );
        }
        ImageF32::from_vec(self.width, self.height, data)
    }

    /// Rebuilds an RGB image from this one with its luma plane replaced:
    /// each pixel is scaled by `new_luma / old_luma`. This is the "sharpen
    /// luma only" mode that avoids colour fringing.
    pub fn with_luma(&self, new_luma: &ImageF32) -> RgbImageU8 {
        assert_eq!(
            (self.width, self.height),
            (new_luma.width(), new_luma.height()),
            "luma shape mismatch"
        );
        let old = self.to_luma();
        let mut out = RgbImageU8::zeros(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let (r, g, b) = self.get(x, y);
                let o = old.get(x, y).max(1e-3);
                let scale = new_luma.get(x, y).max(0.0) / o;
                out.set(
                    x,
                    y,
                    (
                        (f32::from(r) * scale).clamp(0.0, 255.0).round() as u8,
                        (f32::from(g) * scale).clamp(0.0, 255.0).round() as u8,
                        (f32::from(b) * scale).clamp(0.0, 255.0).round() as u8,
                    ),
                );
            }
        }
        out
    }

    /// Builds an RGB test card from three generator functions.
    pub fn from_fn(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> (u8, u8, u8),
    ) -> Self {
        let mut img = RgbImageU8::zeros(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, f(x, y));
            }
        }
        img
    }
}

/// Converts a grayscale image to RGB (replicating the channel).
pub fn gray_to_rgb(img: &ImageU8) -> RgbImageU8 {
    RgbImageU8::from_fn(img.width(), img.height(), |x, y| {
        let v = img.get(x, y);
        (v, v, v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_merge_roundtrip() {
        let img = RgbImageU8::from_fn(4, 3, |x, y| ((x * 20) as u8, (y * 30) as u8, 77));
        let (r, g, b) = img.split_channels();
        let back = RgbImageU8::merge_channels(&r, &g, &b);
        assert_eq!(back, img);
    }

    #[test]
    fn luma_weights() {
        let mut img = RgbImageU8::zeros(1, 1);
        img.set(0, 0, (255, 0, 0));
        assert!((img.to_luma().get(0, 0) - 0.299 * 255.0).abs() < 1e-3);
        img.set(0, 0, (255, 255, 255));
        assert!((img.to_luma().get(0, 0) - 255.0).abs() < 1e-3);
    }

    #[test]
    fn with_luma_scales_brightness() {
        let mut img = RgbImageU8::zeros(1, 1);
        img.set(0, 0, (100, 100, 100));
        let brighter = ImageF32::filled(1, 1, 200.0);
        let out = img.with_luma(&brighter);
        assert_eq!(out.get(0, 0), (200, 200, 200));
    }

    #[test]
    fn gray_to_rgb_replicates() {
        let g = ImageU8::from_vec(2, 1, vec![10, 250]);
        let rgb = gray_to_rgb(&g);
        assert_eq!(rgb.get(0, 0), (10, 10, 10));
        assert_eq!(rgb.get(1, 0), (250, 250, 250));
    }

    #[test]
    #[should_panic(expected = "RGB byte count mismatch")]
    fn from_vec_checks_len() {
        let _ = RgbImageU8::from_vec(2, 2, vec![0; 11]);
    }
}
