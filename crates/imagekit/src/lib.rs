//! # imagekit — image substrate for the sharpness reproduction
//!
//! Single-channel `f32`/`u8` matrices (the representation the paper's
//! pipeline computes on), interleaved RGB images for the multi-channel
//! extension, deterministic synthetic content generators standing in for
//! the paper's unspecified test images, Netpbm I/O, and quality metrics.
//!
//! ```
//! use imagekit::{generate, metrics};
//!
//! let img = generate::natural(128, 128, 42);
//! assert_eq!(img.width(), 128);
//! assert!(metrics::mean(&img) > 0.0);
//! let padded = img.padded(1, true);
//! assert_eq!(padded.width(), 130);
//! ```

#![warn(missing_docs)]

pub mod generate;
pub mod image;
pub mod io;
pub mod metrics;
pub mod rgb;
pub mod rng;

pub use image::{ImageF32, ImageU8};
pub use rgb::RgbImageU8;
