//! Minimal deterministic PRNG for the synthetic generators.
//!
//! SplitMix64 (Steele, Lea & Flood, 2014): a tiny, full-period generator
//! with excellent equidistribution for this purpose — seeding texture
//! lattices and blob placements. Keeping it in-tree makes the generated
//! workloads reproducible from the seed alone, with no dependency on an
//! external crate's stream stability.

/// SplitMix64 generator state.
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)` (24 mantissa bits of randomness).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn gen_range(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo < hi, "empty range");
        lo + (hi - lo) * self.next_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(SplitMix64::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_first_output() {
        // Reference value for seed 0 from the SplitMix64 definition.
        assert_eq!(
            SplitMix64::seed_from_u64(0).next_u64(),
            0xe220_a839_7b1d_cdaf
        );
    }

    #[test]
    fn floats_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(7);
        let mut min = f32::MAX;
        let mut max = f32::MIN;
        for _ in 0..10_000 {
            let v = r.gen_range(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        // The stream actually explores the range.
        assert!(min < -2.0 && max > 4.0);
    }
}
