//! Deterministic synthetic image generators.
//!
//! The paper benchmarks on square brightness matrices from 256×256 up to
//! 8192×8192; the content itself is unspecified (sharpness cost is
//! data-independent apart from which overshoot branch each pixel takes).
//! These generators provide reproducible content with controlled edge
//! structure so that functional tests, quality metrics, and the overshoot
//! branches are all properly exercised.

use crate::image::ImageF32;
use crate::rng::SplitMix64;

/// Horizontal-then-vertical luminance ramp: smooth content, no hard edges.
pub fn gradient(width: usize, height: usize) -> ImageF32 {
    ImageF32::from_fn(width, height, |x, y| {
        let gx = x as f32 / (width.max(2) - 1) as f32;
        let gy = y as f32 / (height.max(2) - 1) as f32;
        255.0 * (0.5 * gx + 0.5 * gy)
    })
}

/// Checkerboard with `cell`-pixel squares: maximal hard edges, the
/// worst case for overshoot control.
pub fn checkerboard(width: usize, height: usize, cell: usize) -> ImageF32 {
    let cell = cell.max(1);
    ImageF32::from_fn(width, height, |x, y| {
        if ((x / cell) + (y / cell)).is_multiple_of(2) {
            230.0
        } else {
            25.0
        }
    })
}

/// Zone plate (concentric chirp): a classical sharpness/aliasing test chart
/// sweeping all spatial frequencies.
pub fn zone_plate(width: usize, height: usize) -> ImageF32 {
    let cx = width as f32 / 2.0;
    let cy = height as f32 / 2.0;
    let k = 0.35 / (width.max(height) as f32);
    ImageF32::from_fn(width, height, |x, y| {
        let dx = x as f32 - cx;
        let dy = y as f32 - cy;
        let r2 = dx * dx + dy * dy;
        127.5 + 127.5 * (k * r2).cos()
    })
}

/// Sum of `n` random Gaussian blobs: smooth "photographic" lighting with a
/// few soft features. Deterministic for a given seed.
pub fn gaussian_blobs(width: usize, height: usize, n: usize, seed: u64) -> ImageF32 {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let blobs: Vec<(f32, f32, f32, f32)> = (0..n)
        .map(|_| {
            (
                rng.gen_range(0.0, width as f32),
                rng.gen_range(0.0, height as f32),
                rng.gen_range(width as f32 / 16.0, width as f32 / 4.0),
                rng.gen_range(60.0, 220.0),
            )
        })
        .collect();
    ImageF32::from_fn(width, height, |x, y| {
        let mut v = 20.0f32;
        for &(bx, by, sigma, amp) in &blobs {
            let dx = x as f32 - bx;
            let dy = y as f32 - by;
            v += amp * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
        }
        v.min(255.0)
    })
}

/// Lattice value noise with bilinear interpolation: mid-frequency texture
/// (grass/fabric-like). Deterministic for a given seed.
pub fn value_noise(width: usize, height: usize, cell: usize, seed: u64) -> ImageF32 {
    let cell = cell.max(2);
    let gw = width / cell + 2;
    let gh = height / cell + 2;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let lattice: Vec<f32> = (0..gw * gh).map(|_| rng.gen_range(0.0, 255.0)).collect();
    let at = |gx: usize, gy: usize| lattice[gy * gw + gx];
    ImageF32::from_fn(width, height, |x, y| {
        let fx = x as f32 / cell as f32;
        let fy = y as f32 / cell as f32;
        let (x0, y0) = (fx as usize, fy as usize);
        let (tx, ty) = (fx - x0 as f32, fy - y0 as f32);
        let a = at(x0, y0) * (1.0 - tx) + at(x0 + 1, y0) * tx;
        let b = at(x0, y0 + 1) * (1.0 - tx) + at(x0 + 1, y0 + 1) * tx;
        a * (1.0 - ty) + b * ty
    })
}

/// A "natural" composite: blobs for lighting, value noise for texture, and
/// a few checkerboard patches for hard edges. The default workload for the
/// figure-reproduction harness.
pub fn natural(width: usize, height: usize, seed: u64) -> ImageF32 {
    let blobs = gaussian_blobs(width, height, 6, seed);
    let noise = value_noise(width, height, 13, seed ^ 0x9e37_79b9);
    let check = checkerboard(width, height, (width / 32).max(1));
    ImageF32::from_fn(width, height, |x, y| {
        let base = 0.6 * blobs.get(x, y) + 0.3 * noise.get(x, y);
        // Hard-edge patch in the lower-right quadrant only.
        let v = if x > width / 2 && y > height / 2 {
            0.5 * base + 0.5 * check.get(x, y)
        } else {
            base
        };
        v.clamp(0.0, 255.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: usize = 64;
    const H: usize = 48;

    fn in_range(img: &ImageF32) -> bool {
        img.pixels().iter().all(|&v| (0.0..=255.0).contains(&v))
    }

    #[test]
    fn all_generators_in_display_range() {
        assert!(in_range(&gradient(W, H)));
        assert!(in_range(&checkerboard(W, H, 8)));
        assert!(in_range(&zone_plate(W, H)));
        assert!(in_range(&gaussian_blobs(W, H, 5, 42)));
        assert!(in_range(&value_noise(W, H, 8, 42)));
        assert!(in_range(&natural(W, H, 42)));
    }

    #[test]
    fn gradient_monotone_along_rows() {
        let g = gradient(W, H);
        for x in 1..W {
            assert!(g.get(x, 10) >= g.get(x - 1, 10));
        }
    }

    #[test]
    fn checkerboard_alternates() {
        let c = checkerboard(16, 16, 4);
        assert_ne!(c.get(0, 0), c.get(4, 0));
        assert_eq!(c.get(0, 0), c.get(8, 0));
        assert_eq!(c.get(0, 0), c.get(4, 4));
    }

    #[test]
    fn seeded_generators_are_deterministic() {
        assert_eq!(gaussian_blobs(W, H, 5, 7), gaussian_blobs(W, H, 5, 7));
        assert_eq!(value_noise(W, H, 8, 7), value_noise(W, H, 8, 7));
        assert_eq!(natural(W, H, 7), natural(W, H, 7));
        assert_ne!(natural(W, H, 7), natural(W, H, 8));
    }

    #[test]
    fn zone_plate_centre_is_bright() {
        let z = zone_plate(W, W);
        assert!(z.get(W / 2, W / 2) > 250.0);
    }

    #[test]
    fn natural_has_edges_and_smooth_regions() {
        let n = natural(128, 128, 3);
        // Hard-edge quadrant should contain larger jumps than the smooth one.
        let jump = |x: usize, y: usize| (n.get(x + 1, y) - n.get(x, y)).abs();
        let max_smooth = (8..56).map(|x| jump(x, 20)).fold(0.0f32, f32::max);
        let max_edge = (72..120).map(|x| jump(x, 100)).fold(0.0f32, f32::max);
        assert!(max_edge > max_smooth);
    }
}
