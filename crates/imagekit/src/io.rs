//! Minimal Netpbm (PGM/PPM) reading and writing.
//!
//! PGM (`P5`) covers the grayscale pipeline inputs/outputs; PPM (`P6`) is
//! used by the RGB extension example. Implemented from the Netpbm spec so
//! the crate stays dependency-free.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::image::ImageU8;
use crate::rgb::RgbImageU8;

/// Upper bound on either image dimension accepted by the readers — a
/// sanity cap so a corrupt header cannot drive a near-`usize::MAX`
/// allocation (the multiplication itself is checked as well).
pub const MAX_DIM: usize = 1 << 20;

/// Parses and validates the `width height maxval` header triple shared by
/// PGM and PPM, returning `(width, height, pixel_count, maxval)` with the
/// product overflow-checked and both dimensions capped at [`MAX_DIM`].
fn read_dims<R: BufRead>(r: &mut R) -> io::Result<(usize, usize, usize, usize)> {
    let width: usize = parse_token(r)?;
    let height: usize = parse_token(r)?;
    let maxval: usize = parse_token(r)?;
    if width == 0 || height == 0 || width > MAX_DIM || height > MAX_DIM {
        return Err(bad_data(format!(
            "unsupported dimensions {width}x{height} (limit {MAX_DIM} per axis)"
        )));
    }
    if maxval == 0 || maxval > 255 {
        return Err(bad_data(format!("unsupported maxval {maxval}")));
    }
    let n = width
        .checked_mul(height)
        .ok_or_else(|| bad_data(format!("dimensions {width}x{height} overflow")))?;
    Ok((width, height, n, maxval))
}

/// Writes a grayscale image as binary PGM (`P5`, maxval 255).
pub fn write_pgm(path: &Path, img: &ImageU8) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P5\n{} {}\n255\n", img.width(), img.height())?;
    w.write_all(img.pixels())?;
    Ok(())
}

/// Writes an RGB image as binary PPM (`P6`, maxval 255).
pub fn write_ppm(path: &Path, img: &RgbImageU8) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P6\n{} {}\n255\n", img.width(), img.height())?;
    w.write_all(img.bytes())?;
    Ok(())
}

/// Reads a PGM image — binary (`P5`) or ASCII (`P2`) — with maxval ≤ 255.
pub fn read_pgm(path: &Path) -> io::Result<ImageU8> {
    let mut r = BufReader::new(File::open(path)?);
    let magic = read_token(&mut r)?;
    if magic != "P5" && magic != "P2" {
        return Err(bad_data(format!("expected P5/P2 magic, got {magic:?}")));
    }
    let (width, height, n, maxval) = read_dims(&mut r)?;
    let data = if magic == "P5" {
        let mut data = vec![0u8; n];
        r.read_exact(&mut data)?;
        data
    } else {
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            let v = parse_token::<_, u16>(&mut r)?;
            if v as usize > maxval {
                return Err(bad_data(format!("sample {v} exceeds maxval {maxval}")));
            }
            data.push(v as u8);
        }
        data
    };
    Ok(ImageU8::from_vec(width, height, data))
}

/// Reads a binary PPM (`P6`) image with maxval ≤ 255.
pub fn read_ppm(path: &Path) -> io::Result<RgbImageU8> {
    let mut r = BufReader::new(File::open(path)?);
    let magic = read_token(&mut r)?;
    if magic != "P6" {
        return Err(bad_data(format!("expected P6 magic, got {magic:?}")));
    }
    let (width, height, n, _maxval) = read_dims(&mut r)?;
    let bytes = n
        .checked_mul(3)
        .ok_or_else(|| bad_data(format!("dimensions {width}x{height} overflow")))?;
    let mut data = vec![0u8; bytes];
    r.read_exact(&mut data)?;
    Ok(RgbImageU8::from_vec(width, height, data))
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Reads one whitespace-delimited header token, skipping `#` comments.
fn read_token<R: BufRead>(r: &mut R) -> io::Result<String> {
    let mut tok = String::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && !tok.is_empty() => break,
            Err(e) => return Err(e),
        }
        let c = byte[0] as char;
        if c == '#' {
            // Comment to end of line.
            let mut line = String::new();
            r.read_line(&mut line)?;
            continue;
        }
        if c.is_ascii_whitespace() {
            if tok.is_empty() {
                continue;
            }
            break;
        }
        tok.push(c);
    }
    Ok(tok)
}

fn parse_token<R: BufRead, T: std::str::FromStr>(r: &mut R) -> io::Result<T> {
    let tok = read_token(r)?;
    tok.parse::<T>()
        .map_err(|_| bad_data(format!("bad header token {tok:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageU8;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("imagekit-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn pgm_roundtrip() {
        let img = ImageU8::from_vec(3, 2, vec![0, 64, 128, 192, 255, 7]);
        let p = tmpfile("a.pgm");
        write_pgm(&p, &img).unwrap();
        let back = read_pgm(&p).unwrap();
        assert_eq!(back, img);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn ppm_roundtrip() {
        let img = RgbImageU8::from_vec(2, 1, vec![255, 0, 0, 0, 255, 0]);
        let p = tmpfile("b.ppm");
        write_ppm(&p, &img).unwrap();
        let back = read_ppm(&p).unwrap();
        assert_eq!(back.bytes(), img.bytes());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn pgm_with_comments_parses() {
        let p = tmpfile("c.pgm");
        std::fs::write(&p, b"P5\n# a comment\n2 1\n255\n\x10\x20").unwrap();
        let img = read_pgm(&p).unwrap();
        assert_eq!(img.pixels(), &[0x10, 0x20]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn wrong_magic_rejected() {
        let p = tmpfile("d.pgm");
        std::fs::write(&p, b"P6\n2 1\n255\nxxxxxx").unwrap();
        assert!(read_pgm(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn ascii_pgm_parses() {
        let p = tmpfile("f.pgm");
        std::fs::write(&p, b"P2\n# ascii variant\n3 2\n255\n0 64 128\n192 255 7\n").unwrap();
        let img = read_pgm(&p).unwrap();
        assert_eq!(img.pixels(), &[0, 64, 128, 192, 255, 7]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn ascii_pgm_truncated_rejected() {
        let p = tmpfile("g.pgm");
        std::fs::write(&p, b"P2\n3 2\n255\n0 64 128\n").unwrap();
        assert!(read_pgm(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn truncated_body_rejected() {
        let p = tmpfile("e.pgm");
        std::fs::write(&p, b"P5\n4 4\n255\nxx").unwrap();
        assert!(read_pgm(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn ascii_sample_above_maxval_rejected() {
        // The reader used to clamp out-of-range ASCII samples to 255;
        // they must be an InvalidData error instead.
        for (name, body) in [
            ("h1.pgm", &b"P2\n2 1\n255\n0 300\n"[..]),
            ("h2.pgm", &b"P2\n2 1\n100\n0 101\n"[..]),
        ] {
            let p = tmpfile(name);
            std::fs::write(&p, body).unwrap();
            let err = read_pgm(&p).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{name}");
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn oversized_or_degenerate_dims_rejected() {
        let huge = format!("P5\n{} {}\n255\n", usize::MAX / 2, 3);
        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("i1.pgm", b"P5\n0 4\n255\n".to_vec()),
            ("i2.pgm", b"P5\n4 0\n255\n".to_vec()),
            (
                "i3.pgm",
                format!("P5\n{} 4\n255\n", MAX_DIM + 1).into_bytes(),
            ),
            ("i4.pgm", huge.into_bytes()),
            ("i5.pgm", b"P5\n4 4\n0\n".to_vec()),
            ("i6.pgm", b"P5\n4 4\n65536\n".to_vec()),
        ];
        for (name, body) in cases {
            let p = tmpfile(name);
            std::fs::write(&p, &body).unwrap();
            let err = read_pgm(&p).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{name}");
            std::fs::remove_file(&p).ok();
        }
        // Same header validation on the PPM path.
        let p = tmpfile("i7.ppm");
        std::fs::write(&p, format!("P6\n{} 4\n255\n", MAX_DIM + 1)).unwrap();
        assert_eq!(read_ppm(&p).unwrap_err().kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn header_corpus_parses() {
        // Comment placement and whitespace variants the spec allows.
        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("j1.pgm", b"P5 2 1 255\n\x01\x02".to_vec()),
            (
                "j2.pgm",
                b"P5\n# c1\n# c2\n2\n# between dims\n1\n255\n\x01\x02".to_vec(),
            ),
            ("j3.pgm", b"P2\n2 1\n255\n  1\t2\n".to_vec()),
        ];
        for (name, body) in cases {
            let p = tmpfile(name);
            std::fs::write(&p, &body).unwrap();
            let img = read_pgm(&p).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(img.pixels(), &[1, 2], "{name}");
            std::fs::remove_file(&p).ok();
        }
    }
}
