//! Image quality / sharpness metrics.
//!
//! Used by the examples and tests to demonstrate that the pipeline actually
//! sharpens (gradient energy goes up) without blowing up the signal (PSNR
//! against the original stays bounded, overshoot keeps pixels in range).

use crate::image::ImageF32;

/// Arithmetic mean of all pixels.
pub fn mean(img: &ImageF32) -> f64 {
    if img.is_empty() {
        return 0.0;
    }
    img.pixels().iter().map(|&v| f64::from(v)).sum::<f64>() / img.len() as f64
}

/// Mean squared error between two same-shaped images.
///
/// # Panics
/// If shapes differ.
pub fn mse(a: &ImageF32, b: &ImageF32) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "shape mismatch"
    );
    if a.is_empty() {
        return 0.0;
    }
    a.pixels()
        .iter()
        .zip(b.pixels())
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Peak signal-to-noise ratio in dB for 8-bit range, `inf` for identical
/// images.
pub fn psnr(a: &ImageF32, b: &ImageF32) -> f64 {
    let e = mse(a, b);
    if e == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / e).log10()
    }
}

/// Mean absolute gradient (forward differences): a simple sharpness index.
/// Sharpened images score higher than their originals.
pub fn gradient_energy(img: &ImageF32) -> f64 {
    let (w, h) = (img.width(), img.height());
    if w < 2 || h < 2 {
        return 0.0;
    }
    let mut acc = 0.0f64;
    for y in 0..h - 1 {
        for x in 0..w - 1 {
            let v = f64::from(img.get(x, y));
            acc += (f64::from(img.get(x + 1, y)) - v).abs();
            acc += (f64::from(img.get(x, y + 1)) - v).abs();
        }
    }
    acc / ((w - 1) * (h - 1) * 2) as f64
}

/// Fraction of pixels outside `[0, 255]` (overshoot-control verification:
/// must be zero on final output).
pub fn out_of_range_fraction(img: &ImageF32) -> f64 {
    if img.is_empty() {
        return 0.0;
    }
    let n = img
        .pixels()
        .iter()
        .filter(|&&v| !(0.0..=255.0).contains(&v))
        .count();
    n as f64 / img.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn mean_of_constant() {
        let img = ImageF32::filled(8, 8, 42.0);
        assert!((mean(&img) - 42.0).abs() < 1e-9);
    }

    #[test]
    fn mse_and_psnr_basics() {
        let a = ImageF32::filled(4, 4, 100.0);
        let mut b = a.clone();
        assert_eq!(mse(&a, &b), 0.0);
        assert!(psnr(&a, &b).is_infinite());
        b.set(0, 0, 110.0);
        assert!((mse(&a, &b) - 100.0 / 16.0).abs() < 1e-9);
        assert!(psnr(&a, &b) > 30.0);
    }

    #[test]
    fn gradient_energy_orders_content() {
        let flat = ImageF32::filled(32, 32, 10.0);
        let soft = generate::gradient(32, 32);
        let hard = generate::checkerboard(32, 32, 4);
        assert_eq!(gradient_energy(&flat), 0.0);
        assert!(gradient_energy(&soft) > 0.0);
        assert!(gradient_energy(&hard) > gradient_energy(&soft));
    }

    #[test]
    fn out_of_range_detects() {
        let mut img = ImageF32::filled(2, 2, 10.0);
        assert_eq!(out_of_range_fraction(&img), 0.0);
        img.set(0, 0, -1.0);
        img.set(1, 1, 300.0);
        assert!((out_of_range_fraction(&img) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_images() {
        let empty = ImageF32::zeros(0, 0);
        assert_eq!(mean(&empty), 0.0);
        let line = ImageF32::filled(5, 1, 9.0);
        assert_eq!(gradient_energy(&line), 0.0);
    }
}
