//! Grayscale image matrices in `f32` and `u8`.
//!
//! The sharpness pipeline operates on single-channel brightness matrices
//! (the paper's "original matrix"). Pixels are stored row-major; the `f32`
//! representation is used throughout the compute pipeline, with `u8` as the
//! interchange format at the edges.

/// Row-major single-channel `f32` image.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageF32 {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl ImageF32 {
    /// Creates a zero-filled image.
    pub fn zeros(width: usize, height: usize) -> Self {
        ImageF32 {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Creates an image filled with `v`.
    pub fn filled(width: usize, height: usize, v: f32) -> Self {
        ImageF32 {
            width,
            height,
            data: vec![v; width * height],
        }
    }

    /// Builds an image from a function of `(x, y)`.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        ImageF32 {
            width,
            height,
            data,
        }
    }

    /// Wraps an existing row-major pixel vector.
    ///
    /// # Panics
    /// If `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "pixel count mismatch");
        ImageF32 {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of pixels.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a 0×0 image.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the raw row-major pixels.
    pub fn pixels(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the raw pixels.
    pub fn pixels_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the image, returning its pixel vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Pixel accessor.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Pixel mutator.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Flat index of `(x, y)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize) -> usize {
        y * self.width + x
    }

    /// One row as a slice.
    pub fn row(&self, y: usize) -> &[f32] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Returns a copy surrounded by a `pad`-pixel border.
    ///
    /// `replicate = false` fills the border with zeros (the paper's Sobel
    /// prep); `replicate = true` clamps to the nearest edge pixel (the
    /// paper's padding for overshoot control, where the 3×3 min/max window
    /// must see sensible values).
    pub fn padded(&self, pad: usize, replicate: bool) -> ImageF32 {
        let (w, h) = (self.width + 2 * pad, self.height + 2 * pad);
        ImageF32::from_fn(w, h, |x, y| {
            let inside_x = x >= pad && x < pad + self.width;
            let inside_y = y >= pad && y < pad + self.height;
            if inside_x && inside_y {
                self.get(x - pad, y - pad)
            } else if replicate {
                let cx = x.saturating_sub(pad).min(self.width - 1);
                let cy = y.saturating_sub(pad).min(self.height - 1);
                self.get(cx, cy)
            } else {
                0.0
            }
        })
    }

    /// Extracts the interior of a padded image (inverse of
    /// [`ImageF32::padded`]).
    pub fn cropped(&self, pad: usize) -> ImageF32 {
        assert!(
            self.width > 2 * pad && self.height > 2 * pad,
            "crop larger than image"
        );
        ImageF32::from_fn(self.width - 2 * pad, self.height - 2 * pad, |x, y| {
            self.get(x + pad, y + pad)
        })
    }

    /// Converts to `u8` with clamping to `[0, 255]` and round-to-nearest.
    pub fn to_u8(&self) -> ImageU8 {
        ImageU8 {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .map(|&v| v.clamp(0.0, 255.0).round() as u8)
                .collect(),
        }
    }

    /// Maximum absolute difference against another image of the same shape.
    ///
    /// # Panics
    /// If the shapes differ.
    pub fn max_abs_diff(&self, other: &ImageF32) -> f32 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }
}

/// Row-major single-channel `u8` image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageU8 {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl ImageU8 {
    /// Creates a zero-filled image.
    pub fn zeros(width: usize, height: usize) -> Self {
        ImageU8 {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Wraps an existing row-major byte vector.
    ///
    /// # Panics
    /// If `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), width * height, "pixel count mismatch");
        ImageU8 {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Borrow of the raw bytes.
    pub fn pixels(&self) -> &[u8] {
        &self.data
    }

    /// Pixel accessor.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }

    /// Converts to `f32` (values stay in `[0, 255]`).
    pub fn to_f32(&self) -> ImageF32 {
        ImageF32 {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&v| f32::from(v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_row_major() {
        let img = ImageF32::from_fn(3, 2, |x, y| (10 * y + x) as f32);
        assert_eq!(img.pixels(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(img.get(2, 1), 12.0);
        assert_eq!(img.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(img.idx(2, 1), 5);
    }

    #[test]
    fn set_and_get() {
        let mut img = ImageF32::zeros(4, 4);
        img.set(1, 2, 5.0);
        assert_eq!(img.get(1, 2), 5.0);
        assert_eq!(img.pixels()[2 * 4 + 1], 5.0);
    }

    #[test]
    fn pad_zero_and_replicate() {
        let img = ImageF32::from_fn(2, 2, |x, y| (1 + x + 2 * y) as f32); // [[1,2],[3,4]]
        let z = img.padded(1, false);
        assert_eq!(z.width(), 4);
        assert_eq!(z.get(0, 0), 0.0);
        assert_eq!(z.get(1, 1), 1.0);
        assert_eq!(z.get(2, 2), 4.0);
        let r = img.padded(1, true);
        assert_eq!(r.get(0, 0), 1.0); // replicated corner
        assert_eq!(r.get(3, 3), 4.0);
        assert_eq!(r.get(0, 2), 3.0); // left edge replicates row value
    }

    #[test]
    fn crop_inverts_pad() {
        let img = ImageF32::from_fn(5, 4, |x, y| (x * y) as f32);
        for replicate in [false, true] {
            assert_eq!(img.padded(2, replicate).cropped(2), img);
        }
    }

    #[test]
    fn u8_roundtrip_and_clamp() {
        let img = ImageF32::from_vec(2, 2, vec![-4.0, 0.4, 254.6, 300.0]);
        let u = img.to_u8();
        assert_eq!(u.pixels(), &[0, 0, 255, 255]);
        let back = u.to_f32();
        assert_eq!(back.get(1, 1), 255.0);
    }

    #[test]
    fn max_abs_diff() {
        let a = ImageF32::filled(2, 2, 1.0);
        let mut b = a.clone();
        b.set(1, 0, 3.5);
        assert_eq!(a.max_abs_diff(&b), 2.5);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "pixel count mismatch")]
    fn from_vec_checks_len() {
        let _ = ImageF32::from_vec(2, 2, vec![0.0; 5]);
    }
}
