//! Offline stand-in for the `criterion` bench harness.
//!
//! This workspace builds with no registry access, so the real criterion
//! crate cannot be fetched. The figure benches only use a small surface —
//! `criterion_group!`/`criterion_main!`, `benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId` and `Bencher::iter`
//! — which this crate reimplements with plain `std::time` measurement:
//! per benchmark it runs a short warm-up, then `sample_size` timed samples
//! of one iteration each, and prints min/median/mean wall-clock times.
//!
//! It is intentionally *not* statistically rigorous; it exists so
//! `cargo bench` keeps producing useful numbers (and `cargo bench
//! --no-run` keeps compiling) in a hermetic environment.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter display into one id.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id with no parameter part.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; `iter` times the supplied routine.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample durations of the most recent `iter` call.
    last: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` once as warm-up, then `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed());
        }
        self.last = times;
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last: Vec::new(),
        };
        f(&mut b);
        self.report(&id.to_string(), &b.last);
        self
    }

    /// Benchmarks `f` under `id`, handing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.last);
        self
    }

    /// Finishes the group (printing is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, times: &[Duration]) {
        if times.is_empty() {
            println!("{}/{id:<40} (no samples)", self.name);
            return;
        }
        let mut sorted: Vec<Duration> = times.to_vec();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{}/{:<40} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            self.name,
            id,
            min,
            median,
            mean,
            sorted.len()
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a benchmark group named `name`.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Parses CLI configuration. The shim accepts and ignores all
    /// arguments (including cargo-bench's `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a bench group: `criterion_group!(name, target_fn, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("cpu", 128).to_string(), "cpu/128");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
