//! Quickstart: sharpen a synthetic image on the simulated GPU and save
//! before/after PGMs.
//!
//! ```text
//! cargo run --release --example quickstart [width] [out_dir]
//! ```

use std::path::PathBuf;

use sharpness::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let width: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);
    let out_dir: PathBuf = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);

    // A deterministic "photo": soft lighting, texture, a hard-edge patch.
    let image = generate::natural(width, width, 42);

    // Sharpen on the simulated FirePro W8000 with every optimization of
    // the paper enabled.
    let ctx = Context::new(DeviceSpec::firepro_w8000());
    let pipeline = GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all());
    let run = pipeline.run(&image).expect("pipeline run");

    println!("sharpness quickstart — {width}x{width} image");
    println!("  simulated GPU time : {:.3} ms", run.total_s * 1e3);
    println!(
        "  input  gradient    : {:.3}",
        metrics::gradient_energy(&image)
    );
    println!(
        "  output gradient    : {:.3}",
        metrics::gradient_energy(&run.output)
    );
    println!(
        "  PSNR vs input      : {:.1} dB",
        metrics::psnr(&image, &run.output)
    );
    println!(
        "  out-of-range pixels: {:.1}% (overshoot control keeps this at 0)",
        metrics::out_of_range_fraction(&run.output) * 100.0
    );

    let before = out_dir.join("quickstart_before.pgm");
    let after = out_dir.join("quickstart_after.pgm");
    imagekit::io::write_pgm(&before, &image.to_u8()).expect("write before");
    imagekit::io::write_pgm(&after, &run.output.to_u8()).expect("write after");
    println!("  wrote {} and {}", before.display(), after.display());

    // Top five most expensive pipeline commands.
    let mut stages = run.stages.clone();
    stages.sort_by(|a, b| b.seconds.total_cmp(&a.seconds));
    println!("  top commands:");
    for s in stages.iter().take(5) {
        println!("    {:<28} {:>9.1} µs", s.name, s.seconds * 1e6);
    }
}
