//! Optimization walkthrough: apply the paper's techniques one step at a
//! time (the Fig. 14 ladder) and show where each one's time goes.
//!
//! ```text
//! cargo run --release --example opt_walkthrough [width]
//! ```

use sharpness::core::report::classify_gpu_stage;
use sharpness::prelude::*;

fn main() {
    let width: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);

    let img = generate::natural(width, width, 11);
    let params = SharpnessParams::default();
    let ctx = Context::new(DeviceSpec::firepro_w8000());

    let cpu = CpuPipeline::new(params).run(&img).expect("cpu run");
    println!("optimization walkthrough at {width}x{width}");
    println!("CPU baseline: {:.3} ms (simulated)\n", cpu.total_s * 1e3);

    let mut base_s = None;
    let mut reference: Option<ImageF32> = None;
    for (name, opts) in OptConfig::cumulative_steps() {
        let run = GpuPipeline::new(ctx.clone(), params, opts)
            .run(&img)
            .expect("gpu run");
        let base = *base_s.get_or_insert(run.total_s);

        // Correctness stays locked through every optimization step.
        if let Some(r) = &reference {
            let d = run.output.max_abs_diff(r);
            assert!(d < 0.05, "step `{name}` diverged by {d}");
        } else {
            reference = Some(run.output.clone());
        }

        println!(
            "{name}: {:.3} ms  ({:.2}x over base, {:.1}x over CPU)",
            run.total_s * 1e3,
            base / run.total_s,
            cpu.total_s / run.total_s
        );
        let mut cats = run.by_category(classify_gpu_stage);
        cats.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (cat, s) in cats.iter().take(4) {
            println!(
                "    {:<12} {:>8.1} µs ({:>4.1}%)",
                cat,
                s * 1e6,
                100.0 * s / run.total_s
            );
        }
        println!();
    }
}
