//! Real-time video sharpening budget check.
//!
//! The paper's motivation is real-time enhancement in TVs and cameras.
//! This example streams a sequence of full-HD-class frames through the
//! base and optimized pipelines and reports whether each configuration
//! holds a 30 fps / 60 fps budget *on the simulated W8000* — both with
//! the paper's serial per-frame model and with double-buffered
//! transfer/compute overlap (`gpu::batch::StreamingPipeline`, an
//! extension beyond the paper).
//!
//! ```text
//! cargo run --release --example video_realtime [frames]
//! ```

use sharpness::core::gpu::batch::StreamingPipeline;
use sharpness::prelude::*;

const W: usize = 1920;
const H: usize = 1088; // 1080 rounded to the pipeline's multiple-of-4 rule

fn main() {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    let ctx = Context::new(DeviceSpec::firepro_w8000());
    let params = SharpnessParams::default();
    let configs: [(&str, OptConfig); 3] = [
        ("base port", OptConfig::none()),
        (
            "fusion+transfer",
            OptConfig {
                data_transfer: true,
                kernel_fusion: true,
                ..OptConfig::none()
            },
        ),
        ("fully optimized", OptConfig::all()),
    ];

    println!("video sharpening — {frames} frames of {W}x{H}");
    let cpu = CpuPipeline::new(params);
    let mut cpu_total = 0.0;
    for f in 0..frames {
        let frame = generate::natural(W, H, 100 + f as u64);
        cpu_total += cpu.run(&frame).expect("cpu frame").total_s;
    }
    report("CPU baseline", cpu_total, frames);

    // Scene changes per frame: regenerate content.
    let sequence: Vec<_> = (0..frames)
        .map(|f| generate::natural(W, H, 100 + f as u64))
        .collect();

    for (name, opts) in configs {
        let pipeline = StreamingPipeline::new(GpuPipeline::new(ctx.clone(), params, opts));
        let stream = pipeline.run_stream(&sequence).expect("stream");
        report(name, stream.serial_s, frames);
        println!(
            "      with double-buffered overlap: {:>8.2} ms/frame  {:>7.1} fps  ({:.2}x from overlap)",
            stream.pipelined_s / frames as f64 * 1e3,
            stream.fps(),
            stream.overlap_speedup()
        );
    }
}

fn report(name: &str, total_s: f64, frames: usize) {
    let per_frame = total_s / frames as f64;
    let fps = 1.0 / per_frame;
    let verdict = if fps >= 60.0 {
        "60 fps OK"
    } else if fps >= 30.0 {
        "30 fps OK"
    } else {
        "below 30 fps"
    };
    println!(
        "  {:<16} {:>8.2} ms/frame  {:>7.1} fps  [{verdict}]",
        name,
        per_frame * 1e3,
        fps
    );
}
