//! Camera pipeline: sharpen a colour frame, the way the paper's intro
//! motivates (TV / camera / VCR image enhancement).
//!
//! Demonstrates the two colour strategies built on the grayscale pipeline:
//!
//! * **luma-only** — sharpen the BT.601 luma plane and rescale RGB by the
//!   luma ratio (no colour fringing, one pipeline run);
//! * **per-channel** — sharpen R, G and B independently (three runs,
//!   maximum acuity, risks slight fringing on saturated edges).
//!
//! ```text
//! cargo run --release --example camera_pipeline [width] [out_dir]
//! ```

use std::path::PathBuf;

use sharpness::prelude::*;

/// Builds a colour test card: smooth sky gradient, textured "foliage"
/// band, and a high-contrast fence.
fn test_card(width: usize, height: usize) -> RgbImageU8 {
    let blobs = generate::gaussian_blobs(width, height, 5, 7);
    let noise = generate::value_noise(width, height, 9, 8);
    RgbImageU8::from_fn(width, height, |x, y| {
        let sky = (180.0 - 60.0 * y as f32 / height as f32).max(0.0);
        let leaf = noise.get(x, y);
        let light = blobs.get(x, y);
        if y > 2 * height / 3 && (x / 7) % 2 == 0 {
            (40, 30, 25) // fence slats: hard vertical edges
        } else if y > height / 2 {
            (
                (0.3 * leaf) as u8,
                (0.5 * leaf + 60.0) as u8,
                (0.25 * leaf) as u8,
            )
        } else {
            (
                (0.55 * sky + 0.2 * light) as u8,
                (0.6 * sky) as u8,
                (sky * 0.9 + 20.0) as u8,
            )
        }
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let width: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);
    let out_dir: PathBuf = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);

    let frame = test_card(width, width);
    let ctx = Context::new(DeviceSpec::firepro_w8000());
    let pipeline = GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all());

    // Strategy 1: luma-only.
    let luma = frame.to_luma();
    let run = pipeline.run(&luma).expect("luma run");
    let luma_sharpened = frame.with_luma(&run.output);
    println!("camera pipeline — {width}x{width} colour frame");
    println!(
        "  luma-only   : 1 pipeline run, {:.3} simulated ms",
        run.total_s * 1e3
    );

    // Strategy 2: per-channel.
    let (r, g, b) = frame.split_channels();
    let mut total = 0.0;
    let mut sharpened = Vec::with_capacity(3);
    for ch in [r, g, b] {
        let run = pipeline.run(&ch).expect("channel run");
        total += run.total_s;
        sharpened.push(run.output);
    }
    let per_channel = RgbImageU8::merge_channels(&sharpened[0], &sharpened[1], &sharpened[2]);
    println!(
        "  per-channel : 3 pipeline runs, {:.3} simulated ms",
        total * 1e3
    );

    // Acuity comparison on the luma plane.
    let g_in = metrics::gradient_energy(&luma);
    let g_luma = metrics::gradient_energy(&luma_sharpened.to_luma());
    let g_rgb = metrics::gradient_energy(&per_channel.to_luma());
    println!("  luma gradient energy: input {g_in:.3} -> luma-only {g_luma:.3} -> per-channel {g_rgb:.3}");

    for (name, img) in [
        ("camera_input.ppm", &frame),
        ("camera_luma.ppm", &luma_sharpened),
        ("camera_rgb.ppm", &per_channel),
    ] {
        let p = out_dir.join(name);
        imagekit::io::write_ppm(&p, img).expect("write ppm");
        println!("  wrote {}", p.display());
    }
}
