//! Device autotuning: derive the hardware-dependent choices the paper
//! "tested in advance" — for several device presets.
//!
//! The paper hard-codes the border CPU/GPU crossover (768²), the
//! reduction unrolling strategy (one wavefront) and the stage-2
//! host/device threshold for its W8000. Retargeting the pipeline to a
//! different device invalidates all three; this example re-derives them
//! with [`sharpness::core::autotune`] for the W8000, a mid-range GPU, and
//! an APU-like part, and shows how the transfer-mode tradeoff flips on
//! the APU.
//!
//! ```text
//! cargo run --release --example autotune_device
//! ```

use sharpness::core::autotune;
use sharpness::prelude::*;
use sharpness::simgpu::timing::{bulk_transfer_time, map_transfer_time};

fn main() {
    let devices = [
        DeviceSpec::firepro_w8000(),
        DeviceSpec::midrange_gpu(),
        DeviceSpec::apu(),
    ];

    println!("autotuning pipeline thresholds per device\n");
    for dev in devices {
        let name = dev.name;
        let transfer = dev.transfer;
        let ctx = Context::new(dev);
        let tuning = autotune::autotune(&ctx);
        println!("{name}:");
        println!("  reduction strategy     : {:?}", tuning.reduction_strategy);
        println!(
            "  stage-2 on GPU above   : {}",
            if tuning.stage2_gpu_threshold == usize::MAX {
                "never (host finish always wins on this link)".to_string()
            } else {
                format!("{} partial sums", tuning.stage2_gpu_threshold)
            }
        );
        println!(
            "  border on GPU at/above : {}²",
            tuning.border_gpu_min_width
        );

        // Section V-A's aside: map/unmap wins on APUs, loses on discrete
        // parts for large transfers.
        let big = (4096 * 4096 * 4) as u64;
        let bulk = bulk_transfer_time(&transfer, big);
        let map = map_transfer_time(&transfer, big);
        println!(
            "  64 MiB upload          : bulk {:.2} ms vs map {:.2} ms -> prefer {}",
            bulk * 1e3,
            map * 1e3,
            if bulk <= map {
                "read/write"
            } else {
                "map/unmap"
            }
        );

        // Sanity: run the pipeline with the tuned config.
        let img = generate::natural(256, 256, 5);
        let t = GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all())
            .with_tuning(tuning)
            .run(&img)
            .expect("tuned run")
            .total_s;
        println!("  256² pipeline (tuned)  : {:.3} ms\n", t * 1e3);
    }
}
