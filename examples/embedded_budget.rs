//! Embedded device-memory budget: sharpen an image larger than the
//! device's buffer budget by streaming strips through the pipeline.
//!
//! The paper's W8000 holds whole 4096² frames comfortably; the TVs and
//! cameras of its introduction often have a few dozen MiB of usable
//! device memory. This example picks a strip height for a given budget,
//! runs the strip pipeline, and verifies the output matches the
//! whole-image run.
//!
//! ```text
//! cargo run --release --example embedded_budget [budget_mib] [width] [height]
//! ```

use sharpness::core::gpu::strips::{strip_rows_for_budget, StripPipeline};
use sharpness::core::memory::device_bytes_required;
use sharpness::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let budget_mib: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let width: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let height: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let budget = budget_mib << 20;

    let img = generate::natural(width, height, 77);
    let opts = OptConfig::all();
    let full_bytes = device_bytes_required(width, height, &opts);
    println!("embedded budget demo — {width}x{height} frame");
    println!(
        "  whole-frame footprint : {:.1} MiB",
        full_bytes as f64 / (1 << 20) as f64
    );
    println!("  device budget         : {budget_mib} MiB");

    let ctx = Context::new(DeviceSpec::firepro_w8000());
    let inner = GpuPipeline::new(ctx, SharpnessParams::default(), opts);

    if full_bytes <= budget {
        println!("  frame fits — strips unnecessary, running whole-image pipeline");
        let run = inner.run(&img).expect("run");
        println!("  time: {:.3} simulated ms", run.total_s * 1e3);
        return;
    }

    let rows = strip_rows_for_budget(budget, width, &opts)
        .expect("budget too small for even a 16-row strip");
    println!("  chosen strip height   : {rows} rows");
    let sp = StripPipeline::new(inner.clone(), rows).expect("strip pipeline");
    let run = sp.run(&img).expect("strip run");
    println!(
        "  strips: {}  peak footprint: {:.1} MiB  time: {:.3} simulated ms",
        run.strips,
        run.peak_device_bytes as f64 / (1 << 20) as f64,
        run.total_s * 1e3
    );
    assert!(
        run.peak_device_bytes <= budget,
        "planner must respect the budget"
    );

    // Accuracy check against the whole-image run (which we can still do
    // host-side, the simulator has no real memory limit).
    let full = inner.run(&img).expect("full run");
    let diff = run.output.max_abs_diff(&full.output);
    println!(
        "  max abs diff vs whole-image run: {diff:.4} (reduction rounding only)  \
         overhead: {:.2}x time",
        run.total_s / full.total_s
    );
    assert!(diff < 0.05);
}
