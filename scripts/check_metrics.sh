#!/usr/bin/env bash
# Metric baseline gate: regenerates the per-config efficiency metrics on
# the deterministic 256² workload and fails on >2% drift against the
# committed files under baselines/metrics/, on shape changes (missing or
# new metrics), or on violation of the paper's Sobel load-count claims
# (vec4 ≤ 4.6 loads/source-pixel, naive ≥ 7.5).
#
#   ./scripts/check_metrics.sh            # gate against baselines/metrics
#   ./scripts/check_metrics.sh --update   # accept current numbers
#
# Intentional model/optimizer changes are accepted by re-running with
# --update and committing the refreshed JSONL files alongside the change.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="--check"
if [ "${1:-}" = "--update" ]; then
    mode="--update"
fi

cargo run --release --quiet --bin metrics_baseline -- "$mode" baselines/metrics
