#!/usr/bin/env bash
# Static invariant lint for hot-loop and accounting discipline.
#
#   ./scripts/lint_invariants.sh
#
# Three rules, all cheap greps, all load-bearing:
#
# 1. Kernel and CPU-stage hot loops must use the shared `math` helpers
#    (`math::fmin` / `math::fmax` / `math::clampf`), never the std float
#    methods. `f32::min`/`f32::max` branch on NaN semantics and the std
#    forms have drifted CPU/GPU results here before; the shared helpers
#    are the single source of truth both engines compare against.
#
# 2. Any kernel file that reads or writes device memory through the raw
#    (uncharged) span accessors must also bulk-charge the traffic via
#    `charge_global_n`, otherwise the timing model silently undercounts
#    bytes. The sanitizer (`cargo test --test sanitize`) audits the
#    amounts at runtime; this lint catches a file that forgot to charge
#    at all before any test runs.
#
# 3. Kernel shape preconditions must be typed errors, not panics. A
#    violated `assert!` inside a kernel closure surfaces as an opaque
#    `Error::KernelPanic` with no kernel name or offending dimension;
#    dispatch functions return `Error::InvalidKernelArgs` instead (the
#    arbitrary-dimension work converted every legacy multiple-of-4
#    assert). `debug_assert!` on internal invariants stays allowed, as do
#    asserts in test modules.
#
# 4. The megapass (banded) executor never charges cost itself. Its
#    charge-equivalence argument — banded simulated seconds bit-identical
#    to monolithic — rests on every cost flowing through the kernels' own
#    per-group accounting, merged by commit_sliced, and through the shared
#    GpuPipeline helpers. A direct `charge_*` call in megapass.rs would be
#    a band-scheduling-dependent rate the monolithic schedule never pays,
#    breaking the invariant silently. (Runtime half: tests/banded.rs
#    asserts bit-equal totals across all 64 configs.)
#
# 5. Telemetry is observation-only. The files that read command records
#    and cost counters to derive metrics/traces must never mutate the
#    state they observe (reset queues, rewrite records, charge bytes) —
#    otherwise "metrics on" changes the numbers being measured. The
#    runtime half of this invariant is tests/telemetry.rs (bit-identical
#    pixels, identical simulated seconds); this grep catches a mutation
#    creeping into the recording path before any test runs. Test modules
#    (after `#[cfg(test)]`) are exempt: fixtures may build records.
#
# 6. SIMD stays contained and cost-blind. Explicit `std::arch`
#    intrinsics and runtime feature detection may live only under the
#    feature-gated `gpu/kernels/simd/` module — anywhere else they would
#    bypass the runtime-dispatch safety story (scalar fallback, forced
#    backend override, bit-exactness tests). And the simd span modules
#    must never touch the cost model (`charge_*`, `GroupCtx`): charged
#    simulated time is commit-order accounting owned by the kernel
#    closures, so a charge inside a backend would make simulated seconds
#    depend on the host's CPU features. (Runtime half: tests/simd.rs
#    asserts bit-identical pixels and `.to_bits()`-identical simulated
#    seconds across backends.)
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

hot_paths=(crates/core/src/gpu/kernels crates/core/src/cpu/stages.rs)
banned='f32::min|f32::max|\.clamp\('
if matches=$(grep -rnE "$banned" "${hot_paths[@]}"); then
    echo "lint: std float min/max/clamp in hot-loop code (use math::fmin/fmax/clampf):"
    echo "$matches"
    fail=1
fi

raw_span='read_into|slice_raw|set_span_raw'
for f in crates/core/src/gpu/kernels/*.rs; do
    if grep -qE "$raw_span" "$f" && ! grep -q 'charge_global_n' "$f"; then
        echo "lint: $f uses raw span accessors but never calls charge_global_n"
        fail=1
    fi
done

shape_asserts='(^|[^_[:alnum:]])(assert|assert_eq|assert_ne)!'
for f in crates/core/src/gpu/kernels/*.rs; do
    if matches=$(awk '/#\[cfg\(test\)\]/{exit} {print FILENAME":"FNR":"$0}' "$f" \
        | grep -E "$shape_asserts"); then
        echo "lint: kernel precondition panics (return Error::InvalidKernelArgs instead):"
        echo "$matches"
        fail=1
    fi
done

megapass=crates/core/src/gpu/megapass.rs
if matches=$(awk '/#\[cfg\(test\)\]/{exit} {print FILENAME":"FNR":"$0}' "$megapass" \
    | grep -E 'charge_[[:alnum:]_]*\('); then
    echo "lint: megapass executor charges cost directly (must flow through kernel accounting/commit_sliced):"
    echo "$matches"
    fail=1
fi

telemetry_files=(
    crates/core/src/telemetry.rs
    crates/simgpu/src/metrics.rs
    crates/simgpu/src/trace.rs
)
observer_mutations='\.reset\(|records_mut|charge_global|set_span|\.counters[[:space:]]*=|&mut CommandRecord|&mut CostCounters'
for f in "${telemetry_files[@]}"; do
    # Only non-test code is held to the rule; fixtures below #[cfg(test)]
    # may construct and edit records freely.
    if matches=$(awk '/#\[cfg\(test\)\]/{exit} {print FILENAME":"FNR":"$0}' "$f" \
        | grep -E "$observer_mutations"); then
        echo "lint: telemetry recording path mutates observed state (observation-only invariant):"
        echo "$matches"
        fail=1
    fi
done

simd_dir=crates/core/src/gpu/kernels/simd
arch_markers='(std|core)::arch|is_x86_feature_detected|_mm_|_mm256_'
if matches=$(grep -rnE "$arch_markers" crates src --include='*.rs' \
    | grep -v "^$simd_dir/"); then
    echo "lint: std::arch intrinsics/feature detection outside $simd_dir (keep SIMD behind the dispatch module):"
    echo "$matches"
    fail=1
fi

for f in "$simd_dir"/*.rs; do
    if matches=$(awk '/#\[cfg\(test\)\]/{exit} {print FILENAME":"FNR":"$0}' "$f" \
        | grep -E 'charge_[[:alnum:]_]*\(|GroupCtx' \
        | grep -vE ':[0-9]+:[[:space:]]*//'); then
        echo "lint: simd span module touches the cost model (charges are owned by kernel closures):"
        echo "$matches"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "lint_invariants: FAILED"
    exit 1
fi
echo "lint_invariants: OK"
