#!/usr/bin/env bash
# Static invariant lint for hot-loop and accounting discipline.
#
#   ./scripts/lint_invariants.sh
#
# Two rules, both cheap greps, both load-bearing:
#
# 1. Kernel and CPU-stage hot loops must use the shared `math` helpers
#    (`math::fmin` / `math::fmax` / `math::clampf`), never the std float
#    methods. `f32::min`/`f32::max` branch on NaN semantics and the std
#    forms have drifted CPU/GPU results here before; the shared helpers
#    are the single source of truth both engines compare against.
#
# 2. Any kernel file that reads or writes device memory through the raw
#    (uncharged) span accessors must also bulk-charge the traffic via
#    `charge_global_n`, otherwise the timing model silently undercounts
#    bytes. The sanitizer (`cargo test --test sanitize`) audits the
#    amounts at runtime; this lint catches a file that forgot to charge
#    at all before any test runs.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

hot_paths=(crates/core/src/gpu/kernels crates/core/src/cpu/stages.rs)
banned='f32::min|f32::max|\.clamp\('
if matches=$(grep -rnE "$banned" "${hot_paths[@]}"); then
    echo "lint: std float min/max/clamp in hot-loop code (use math::fmin/fmax/clampf):"
    echo "$matches"
    fail=1
fi

raw_span='read_into|slice_raw|set_span_raw'
for f in crates/core/src/gpu/kernels/*.rs; do
    if grep -qE "$raw_span" "$f" && ! grep -q 'charge_global_n' "$f"; then
        echo "lint: $f uses raw span accessors but never calls charge_global_n"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "lint_invariants: FAILED"
    exit 1
fi
echo "lint_invariants: OK"
