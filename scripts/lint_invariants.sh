#!/usr/bin/env bash
# Static invariant lint — thin wrapper around the token-aware Rust
# implementation in src/bin/lint_invariants.rs (comments and string
# literals are lexed away before any rule matches; see that file for the
# eight rules and their rationale).
#
#   ./scripts/lint_invariants.sh
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release --quiet --bin lint_invariants
