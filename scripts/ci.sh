#!/usr/bin/env bash
# Repo CI gate: formatting, lints, tier-1 tests, and bench compilation.
#
#   ./scripts/ci.sh          # fast gate (includes the small sanitizer sweep)
#   ./scripts/ci.sh --full   # also run the full sanitizer sweep (64 configs
#                            # x four sizes; minutes, not seconds)
#
# Tier-1 (per ROADMAP.md) is `cargo build --release && cargo test -q` at the
# workspace root. `cargo bench --no-run` keeps the wall-clock throughput
# bench compiling even though CI boxes are too noisy to gate on its numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

full=0
if [ "${1:-}" = "--full" ]; then
    full=1
fi

echo "== lint_invariants"
./scripts/lint_invariants.sh

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== metric baselines"
./scripts/check_metrics.sh

echo "== odd-shape smoke (1001x701 through the CLI, base and optimized)"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
{ printf 'P5\n1001 701\n255\n'; head -c $((1001 * 701)) /dev/urandom; } \
    > "$smoke_dir/odd.pgm"
./target/release/sharpen "$smoke_dir/odd.pgm" "$smoke_dir/odd-all.pgm" \
    --opts all --sanitize > /dev/null
./target/release/sharpen "$smoke_dir/odd.pgm" "$smoke_dir/odd-none.pgm" \
    --opts none > /dev/null
./target/release/sharpen "$smoke_dir/odd.pgm" "$smoke_dir/odd-cpu.pgm" \
    --cpu > /dev/null
# The base GPU config keeps the reduction on the CPU, so its output must
# match the CPU reference bit-for-bit even on odd shapes.
cmp "$smoke_dir/odd-none.pgm" "$smoke_dir/odd-cpu.pgm"

echo "== banded smoke (sanitized banded run is byte-identical to monolithic)"
./target/release/sharpen "$smoke_dir/odd.pgm" "$smoke_dir/odd-banded.pgm" \
    --opts all --banded --sanitize > /dev/null
cmp "$smoke_dir/odd-all.pgm" "$smoke_dir/odd-banded.pgm"

if [ "$full" -eq 1 ]; then
    echo "== full sanitizer sweep (all configs x all sizes)"
    cargo test -q --release --test sanitize -- --ignored
    echo "== full arbitrary-shape sweep (all configs at 1001x701)"
    cargo test -q --release --test arbitrary_shapes -- --ignored
    echo "== full banded equivalence sweep (all configs, banded vs monolithic)"
    cargo test -q --release --test banded -- --ignored
fi

echo "== cargo bench --no-run"
cargo bench --workspace --no-run

echo "CI OK"
