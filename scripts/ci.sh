#!/usr/bin/env bash
# Repo CI gate: formatting, lints, tier-1 tests, and bench compilation.
#
#   ./scripts/ci.sh          # fast gate (includes the token-aware Rust lint,
#                            # the static access-verification sweep, and the
#                            # tuner's predicted-vs-executed agreement sweep)
#   ./scripts/ci.sh --full   # also run the sanitized static-vs-dynamic
#                            # cross-validation sweep and the full sanitizer
#                            # sweep (64 configs x four sizes; minutes)
#
# Tier-1 (per ROADMAP.md) is `cargo build --release && cargo test -q` at the
# workspace root, run twice: default features and `--features simd` (the
# explicit host-SIMD kernel backends must never change results, so the whole
# suite is the equivalence oracle). `cargo bench --no-run` keeps the
# wall-clock benches compiling even though CI boxes are too noisy to gate on
# their numbers; `--full` adds a 0.9x sanity floor for the SIMD backend.
set -euo pipefail
cd "$(dirname "$0")/.."

full=0
if [ "${1:-}" = "--full" ]; then
    full=1
fi

echo "== lint_invariants"
./scripts/lint_invariants.sh

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== feature matrix: tier-1 again with --features simd"
cargo clippy --all-targets --features simd -- -D warnings
cargo clippy -p sharpness-bench --all-targets --features simd -- -D warnings
cargo build --release --features simd
cargo test -q --features simd
cargo test -q -p sharpness-core --features simd

echo "== static access verification sweep (64 configs x 4 shapes x 2 schedules)"
cargo run --release -q -p sharpness-bench --bin repro -- --verify-static

echo "== tuner bit-agreement sweep (predicted vs executed, 64 configs x shapes x schedules x devices)"
# The model-based autotuner's entire claim is that its closed-form cost
# predictor returns `.to_bits()`-identical seconds to executing the
# simulated pipeline. This sweep proves it for the full config space on
# every CI pass, so the predictor can never silently drift from the
# executor it mirrors.
cargo test -q --release --test tune -- --ignored

echo "== metric baselines"
./scripts/check_metrics.sh

echo "== odd-shape smoke (1001x701 through the CLI, base and optimized)"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
{ printf 'P5\n1001 701\n255\n'; head -c $((1001 * 701)) /dev/urandom; } \
    > "$smoke_dir/odd.pgm"
./target/release/sharpen "$smoke_dir/odd.pgm" "$smoke_dir/odd-all.pgm" \
    --opts all --sanitize --verify-static > /dev/null
./target/release/sharpen "$smoke_dir/odd.pgm" "$smoke_dir/odd-none.pgm" \
    --opts none > /dev/null
./target/release/sharpen "$smoke_dir/odd.pgm" "$smoke_dir/odd-cpu.pgm" \
    --cpu > /dev/null
# The base GPU config keeps the reduction on the CPU, so its output must
# match the CPU reference bit-for-bit even on odd shapes.
cmp "$smoke_dir/odd-none.pgm" "$smoke_dir/odd-cpu.pgm"

echo "== autotune smoke (model-searched schedule on the odd shape, sanitized)"
# --autotune replaces --opts with the model search's winner; the sanitized
# run plus static verification prove the tuned schedule is as safe as the
# hand-picked ones on a shape the paper never measured.
./target/release/sharpen "$smoke_dir/odd.pgm" "$smoke_dir/odd-tuned.pgm" \
    --autotune --sanitize --verify-static > /dev/null

echo "== banded smoke (sanitized banded run is byte-identical to monolithic)"
./target/release/sharpen "$smoke_dir/odd.pgm" "$smoke_dir/odd-banded.pgm" \
    --opts all --banded --sanitize --verify-static > /dev/null
cmp "$smoke_dir/odd-all.pgm" "$smoke_dir/odd-banded.pgm"

echo "== span trace check (emitted Chrome trace parses; span tree nests)"
./target/release/sharpen "$smoke_dir/odd.pgm" "$smoke_dir/odd-traced.pgm" \
    --opts all --trace "$smoke_dir/trace.json" --explain > /dev/null
./target/release/trace_check "$smoke_dir/trace.json"

echo "== service smoke (seeded load, sanitized, byte-compared vs direct)"
# A small deterministic request stream through the sharpen service:
# --sanitize sweeps every served dispatch, --selfcheck byte-compares each
# served output against direct PipelinePlan execution of the same request.
./target/release/sharpen serve --requests 48 --seed 9 --gap-us 500 \
    --sanitize --selfcheck > /dev/null

echo "== perf ledger (small bench append + recent-window-vs-history check)"
# Appends to a scratch copy of the committed ledger so CI never dirties
# the tree; the check still validates the committed history plus one
# fresh run. The threshold is loose (0.6) because CI boxes are noisy —
# the tight trend analysis happens on developer machines via
# `perf_ledger --check` against baselines/LEDGER.jsonl.
cp baselines/LEDGER.jsonl "$smoke_dir/LEDGER.jsonl"
MP_SIZES=256 MP_FRAMES=3 MP_OUT="$smoke_dir/mp_ledger.json" \
    LEDGER_OUT="$smoke_dir/LEDGER.jsonl" \
    cargo bench -q -p sharpness-bench --bench megapass_wallclock > /dev/null
TP_WIDTH=256 TP_FRAMES=4 TP_OUT="$smoke_dir/tp_ledger.json" \
    LEDGER_OUT="$smoke_dir/LEDGER.jsonl" \
    cargo bench -q -p sharpness-bench --bench throughput_wallclock > /dev/null
SV_REQUESTS=48 SV_OUT="$smoke_dir/sv_ledger.json" \
    LEDGER_OUT="$smoke_dir/LEDGER.jsonl" \
    cargo bench -q -p sharpness-bench --bench service_load > /dev/null
TM_SHAPES=256x256 TM_OUT="$smoke_dir/tm_ledger.json" \
    LEDGER_OUT="$smoke_dir/LEDGER.jsonl" \
    cargo bench -q -p sharpness-bench --bench tune_model > /dev/null
cargo run --release -q -p sharpness-bench --bin perf_ledger -- \
    --check --path "$smoke_dir/LEDGER.jsonl" --threshold 0.6

if [ "$full" -eq 1 ]; then
    echo "== sanitized static-vs-dynamic cross-validation sweep"
    cargo test -q --release --test verify_static -- --ignored
    echo "== full sanitizer sweep (all configs x all sizes)"
    cargo test -q --release --test sanitize -- --ignored
    echo "== full arbitrary-shape sweep (all configs at 1001x701)"
    cargo test -q --release --test arbitrary_shapes -- --ignored
    echo "== full banded equivalence sweep (all configs, banded vs monolithic)"
    cargo test -q --release --test banded -- --ignored
    echo "== full SIMD backend equivalence sweep (all configs, sanitized)"
    cargo test -q --release --features simd --test simd -- --ignored
    echo "== SIMD wall-clock smoke (monolithic avx2/sse2 vs autovec at 1024^2)"
    # Not a perf gate on absolute numbers (CI boxes are noisy) — only a
    # sanity floor: the explicit backend must not be slower than 0.9x the
    # autovectorized spans, which would mean dispatch is broken.
    MP_SIZES=1024 MP_FRAMES=5 MP_OUT="$smoke_dir/bench_smoke.json" \
        LEDGER_OUT="$smoke_dir/LEDGER.jsonl" \
        cargo bench -q -p sharpness-bench --features simd \
        --bench megapass_wallclock > /dev/null
    awk -F'"' '
        /"schedule": "monolithic"/ && !ref_seen { ref_seen = 1; next }
        /"schedule": "monolithic"/ && ref_seen && !checked {
            checked = 1
            split($0, a, "speedup_vs_monolithic\": ")
            split(a[2], b, "}")
            if (b[1] + 0 < 0.9) {
                printf "SIMD smoke FAILED: monolithic simd speedup %s < 0.9x scalar\n", b[1]
                exit 1
            }
            printf "SIMD smoke OK: monolithic simd speedup %sx\n", b[1]
        }
        END {
            if (!checked) {
                print "SIMD smoke FAILED: no simd monolithic row in bench JSON"
                exit 1
            }
        }
    ' "$smoke_dir/bench_smoke.json"
fi

echo "== cargo bench --no-run"
cargo bench --workspace --no-run

echo "CI OK"
