#!/usr/bin/env bash
# Repo CI gate: formatting, lints, tier-1 tests, and bench compilation.
#
#   ./scripts/ci.sh          # fast gate (includes the small sanitizer sweep)
#   ./scripts/ci.sh --full   # also run the full sanitizer sweep (64 configs
#                            # x four sizes; minutes, not seconds)
#
# Tier-1 (per ROADMAP.md) is `cargo build --release && cargo test -q` at the
# workspace root. `cargo bench --no-run` keeps the wall-clock throughput
# bench compiling even though CI boxes are too noisy to gate on its numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

full=0
if [ "${1:-}" = "--full" ]; then
    full=1
fi

echo "== lint_invariants"
./scripts/lint_invariants.sh

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== metric baselines"
./scripts/check_metrics.sh

if [ "$full" -eq 1 ]; then
    echo "== full sanitizer sweep (all configs x all sizes)"
    cargo test -q --release --test sanitize -- --ignored
fi

echo "== cargo bench --no-run"
cargo bench --workspace --no-run

echo "CI OK"
