#!/usr/bin/env bash
# Repo CI gate: formatting, lints, tier-1 tests, and bench compilation.
#
#   ./scripts/ci.sh
#
# Tier-1 (per ROADMAP.md) is `cargo build --release && cargo test -q` at the
# workspace root. `cargo bench --no-run` keeps the wall-clock throughput
# bench compiling even though CI boxes are too noisy to gate on its numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== cargo bench --no-run"
cargo bench --workspace --no-run

echo "CI OK"
