//! The tuner's load-bearing guarantee: the closed-form predictor in
//! `core::tune` reports simulated seconds that are `.to_bits()`-identical
//! to actually executing the pipeline — same configs, same shapes, same
//! schedules, same device profiles. Plus the rediscovery acceptance: the
//! search must land on the paper's hand-tuned W8000 configuration without
//! hints, and shift in the physically expected direction on other
//! presets.

use sharpness::core::autotune;
use sharpness::core::tune::{self, SearchMode};
use sharpness::prelude::*;

fn all_configs() -> Vec<OptConfig> {
    (0..64u32).map(OptConfig::from_bits).collect()
}

/// Predicts and executes one frame, asserting bit-identical simulated
/// seconds; on mismatch, prints the first diverging command record.
fn assert_agreement(w: usize, h: usize, opts: OptConfig, schedule: Schedule, dev: &DeviceSpec) {
    let cpu = CpuSpec::core_i5_3470();
    let tuning = Tuning::default();
    let p = tune::predict_frame(w, h, &opts, &tuning, schedule, dev, &cpu)
        .unwrap_or_else(|e| panic!("predict {opts:?} {schedule:?} {w}x{h}: {e}"));
    let img = generate::natural(w, h, 11);
    let pipe = GpuPipeline::new(Context::new(dev.clone()), SharpnessParams::default(), opts)
        .with_tuning(tuning)
        .with_schedule(schedule);
    let r = pipe
        .run(&img)
        .unwrap_or_else(|e| panic!("run {opts:?} {schedule:?} {w}x{h}: {e}"));
    if p.total_s.to_bits() == r.total_s.to_bits() {
        return;
    }
    // Locate the first command whose name or duration diverges so recipe
    // bugs point straight at the responsible kernel.
    for i in 0..p.commands.len().max(r.stages.len()) {
        let pred = p.commands.get(i);
        let exec = r.stages.get(i);
        let same = match (pred, exec) {
            (Some(p), Some(e)) => *p.name == *e.name && p.seconds.to_bits() == e.seconds.to_bits(),
            _ => false,
        };
        if !same {
            panic!(
                "prediction diverges at command {i} for {opts:?} {schedule:?} {w}x{h} on {}:\n  \
                 predicted: {pred:?}\n  executed:  {exec:?}\n  \
                 totals: predicted {} vs executed {}",
                dev.name, p.total_s, r.total_s
            );
        }
    }
    panic!(
        "totals differ but all {} commands match for {opts:?} {schedule:?} {w}x{h} on {}: \
         predicted {} vs executed {}",
        p.commands.len(),
        dev.name,
        p.total_s,
        r.total_s
    );
}

/// Fast default gate: every config at 256² monolithic on the paper's
/// device, predicted with zero execution, bit-equal to execution.
#[test]
fn predicted_seconds_match_executed_for_all_64_configs() {
    let dev = DeviceSpec::firepro_w8000();
    for opts in all_configs() {
        assert_agreement(256, 256, opts, Schedule::Monolithic, &dev);
    }
}

/// Fast default gate: banded schedules, ragged odd shapes and a second
/// device profile on a representative config subset.
#[test]
fn predicted_seconds_match_executed_across_schedules_shapes_and_devices() {
    let representative: Vec<OptConfig> = [0u32, 5, 21, 42, 63]
        .into_iter()
        .map(OptConfig::from_bits)
        .collect();
    for dev in [DeviceSpec::firepro_w8000(), DeviceSpec::midrange_gpu()] {
        for &opts in &representative {
            assert_agreement(256, 256, opts, Schedule::Banded(64), &dev);
            assert_agreement(253, 131, opts, Schedule::Monolithic, &dev);
            assert_agreement(253, 131, opts, Schedule::Banded(48), &dev);
        }
    }
}

/// The full acceptance sweep (release-only, run by `ci.sh` every pass):
/// 64 configs × {256², 768², 1001×701} × {monolithic, banded} × two
/// device profiles, every one `.to_bits()`-identical.
#[test]
#[ignore = "full sweep; run with --release via ci.sh"]
fn full_agreement_sweep_64_configs_3_shapes_2_schedules_2_devices() {
    for dev in [DeviceSpec::firepro_w8000(), DeviceSpec::midrange_gpu()] {
        for (w, h) in [(256, 256), (768, 768), (1001, 701)] {
            for opts in all_configs() {
                assert_agreement(w, h, opts, Schedule::Monolithic, &dev);
                assert_agreement(w, h, opts, Schedule::Banded(64), &dev);
            }
        }
    }
}

/// ROADMAP win condition: with no hand-seeded hints, the search on the
/// W8000 profile lands on the paper's Fig. 14 winners — kernel fusion
/// and vectorization on — and the model-driven crossover derivation
/// lands in the 768-neighborhood of Fig. 17.
#[test]
fn tuner_rediscovers_the_papers_w8000_config() {
    let dev = DeviceSpec::firepro_w8000();
    let cpu = CpuSpec::core_i5_3470();
    for (w, h) in [(1024, 1024), (2048, 2048)] {
        let r = tune::search(w, h, &dev, &cpu, SearchMode::Guided).unwrap();
        assert!(r.opts.kernel_fusion, "{w}x{h}: {}", r.summary_line());
        assert!(r.opts.vectorization, "{w}x{h}: {}", r.summary_line());
        assert!(r.speedup_vs_default() >= 1.0);
    }
    let tuned = autotune::autotune(&Context::new(dev));
    assert!(
        (512..=1024).contains(&tuned.border_gpu_min_width),
        "W8000 crossover {} outside the paper's 768-neighborhood",
        tuned.border_gpu_min_width
    );
}

/// The tuned choices must shift in the physically expected direction
/// across device presets. The border crossover is launch-overhead and
/// kernel-speed dominated: the four border kernels run on data already
/// resident on the device, while the CPU path pays two (small) bus
/// crossings plus host interpolation. So a *faster* GPU pulls the
/// crossover down, a *weaker* GPU (or pricier launches) pushes it up —
/// and, less intuitively, a *slower* bus also pulls it down, because
/// only the CPU path touches the bus at all.
#[test]
fn tuning_shifts_in_the_physically_expected_direction_across_presets() {
    let crossover = |dev: DeviceSpec| autotune::autotune(&Context::new(dev)).border_gpu_min_width;
    let w8000 = crossover(DeviceSpec::firepro_w8000());
    // Fast HBM part: kernels and launches are cheap, GPU wins earlier.
    assert!(
        crossover(DeviceSpec::hbm_gpu()) < w8000,
        "HBM crossover must drop below the W8000's {w8000}"
    );
    // APU: weak ALUs make the four border kernels expensive while the
    // shared-memory bus makes the CPU path's crossings cheap.
    let apu = crossover(DeviceSpec::apu());
    assert!(apu > w8000, "APU crossover {apu} must exceed {w8000}");
    // Embedded SoC: weaker still, plus slower launches — within the
    // probed range the GPU border never wins at all.
    let embedded = crossover(DeviceSpec::embedded_gpu());
    assert!(
        embedded > apu,
        "embedded crossover {embedded} must exceed the APU's {apu}"
    );

    // The bus axis in isolation: degrading only the interconnect of the
    // W8000 penalizes the CPU border path (its two bus crossings) and
    // leaves the device-resident GPU path untouched, so the crossover
    // must move DOWN monotonically.
    let mut prev = w8000;
    for scale in [0.25, 0.0625] {
        let mut dev = DeviceSpec::firepro_w8000();
        dev.transfer.bulk_bw *= scale;
        dev.transfer.rect_bw *= scale;
        dev.transfer.map_bw *= scale;
        let x = crossover(dev);
        assert!(
            x < prev,
            "bus x{scale}: crossover {x} must drop below {prev}"
        );
        prev = x;
    }

    // A weak device with cheap readbacks should keep the small-image
    // reduction on the CPU, where the W8000 sends it to the GPU.
    let cpu = CpuSpec::core_i5_3470();
    let on_w8000 = tune::search(
        256,
        256,
        &DeviceSpec::firepro_w8000(),
        &cpu,
        SearchMode::Exhaustive,
    )
    .unwrap();
    let on_embedded = tune::search(
        256,
        256,
        &DeviceSpec::embedded_gpu(),
        &cpu,
        SearchMode::Exhaustive,
    )
    .unwrap();
    assert!(on_w8000.opts.reduction_gpu, "{}", on_w8000.summary_line());
    assert!(
        !on_embedded.opts.reduction_gpu,
        "{}",
        on_embedded.summary_line()
    );
}

/// `sharpen --autotune` level sanity on every preset: the derived tuning
/// is usable and the per-shape search beats-or-ties the paper default.
#[test]
fn search_never_loses_to_the_paper_default_on_any_preset() {
    let cpu = CpuSpec::core_i5_3470();
    for dev in [
        DeviceSpec::firepro_w8000(),
        DeviceSpec::midrange_gpu(),
        DeviceSpec::apu(),
        DeviceSpec::embedded_gpu(),
        DeviceSpec::hbm_gpu(),
    ] {
        for (w, h) in [(256, 256), (1001, 701)] {
            let r = tune::search(w, h, &dev, &cpu, SearchMode::Exhaustive).unwrap();
            assert!(
                r.speedup_vs_default() >= 1.0,
                "{}: {}",
                dev.name,
                r.summary_line()
            );
            assert!(
                r.banded_tie,
                "{}: banding must stay cost-invisible",
                dev.name
            );
        }
    }
}
