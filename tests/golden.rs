//! Golden regression tests: the pipeline's output statistics for fixed
//! seeds are pinned so that refactors cannot silently change the
//! algorithm. Statistics (mean brightness, gradient energy) are compared
//! with a tight tolerance rather than bit patterns so the tests survive
//! platform differences in `powf`.

use sharpness::prelude::*;

/// `(width, seed, mean, gradient_energy)` of the CPU pipeline output with
/// default parameters. Re-recorded when the workload generators moved to
/// the in-tree SplitMix64 PRNG (the images changed, the algorithm did not
/// — the CPU/GPU agreement test below is the invariant that survived).
const GOLDEN: [(usize, u64, f64, f64); 3] = [
    (64, 1, 113.534149, 24.706078),
    (128, 7, 118.946660, 16.197411),
    (256, 2015, 104.871766, 9.179587),
];

const TOL: f64 = 0.05;

#[test]
fn cpu_pipeline_statistics_are_pinned() {
    for (w, seed, mean, grad) in GOLDEN {
        let img = generate::natural(w, w, seed);
        let r = CpuPipeline::new(SharpnessParams::default())
            .run(&img)
            .unwrap();
        let m = metrics::mean(&r.output);
        let g = metrics::gradient_energy(&r.output);
        assert!(
            (m - mean).abs() < TOL,
            "{w}/{seed}: mean {m} vs golden {mean}"
        );
        assert!(
            (g - grad).abs() < TOL,
            "{w}/{seed}: gradient {g} vs golden {grad}"
        );
    }
}

#[test]
fn gpu_pipeline_statistics_match_golden_too() {
    // The optimized GPU path must land on the same statistics (its only
    // deviation from the CPU path is the tree-summed mean).
    for (w, seed, mean, grad) in GOLDEN {
        let img = generate::natural(w, w, seed);
        let ctx = Context::new(DeviceSpec::firepro_w8000());
        let r = GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all())
            .run(&img)
            .unwrap();
        let m = metrics::mean(&r.output);
        let g = metrics::gradient_energy(&r.output);
        assert!(
            (m - mean).abs() < TOL,
            "{w}/{seed}: mean {m} vs golden {mean}"
        );
        assert!(
            (g - grad).abs() < TOL,
            "{w}/{seed}: gradient {g} vs golden {grad}"
        );
    }
}

#[test]
fn workload_generator_is_pinned() {
    // The figure harness depends on the workload being reproducible.
    let img = generate::natural(256, 256, 2015);
    let m = metrics::mean(&img);
    assert!((m - 105.01).abs() < 1.0, "workload mean drifted: {m}");
    let g = metrics::gradient_energy(&img);
    assert!(g > 3.0 && g < 12.0, "workload gradient drifted: {g}");
}
