//! Telemetry integration tests: enabling metrics collection must never
//! change what it measures. Runs with telemetry on produce bit-identical
//! pixels and identical simulated seconds across every optimization
//! config, the derived metrics agree with the run report they were read
//! from, and the committed baseline ladder reproduces the paper's Sobel
//! load-count claims end to end.

use imagekit::generate;
use sharpness_core::gpu::{GpuPipeline, OptConfig};
use sharpness_core::params::SharpnessParams;
use sharpness_core::telemetry::{baseline_configs, baseline_registry};
use simgpu::prelude::*;

fn spec() -> DeviceSpec {
    DeviceSpec::firepro_w8000()
}

/// All 64 combinations of the six optimization flags.
fn all_configs() -> Vec<OptConfig> {
    (0..64u32)
        .map(|bits| OptConfig {
            data_transfer: bits & 1 != 0,
            kernel_fusion: bits & 2 != 0,
            reduction_gpu: bits & 4 != 0,
            vectorization: bits & 8 != 0,
            border_gpu: bits & 16 != 0,
            others: bits & 32 != 0,
        })
        .collect()
}

// ---- observation-only invariant ---------------------------------------

#[test]
fn telemetry_is_observation_only_for_every_opt_config() {
    let img = generate::natural(64, 64, 7);
    let ctx = Context::new(spec());
    for (bits, cfg) in all_configs().into_iter().enumerate() {
        let pipe = GpuPipeline::new(ctx.clone(), SharpnessParams::default(), cfg);
        let plain = pipe.run(&img).expect("plain run");
        let (observed, tel) = pipe.run_with_telemetry(&img).expect("telemetry run");

        // Bit-identical pixels: exact f32 equality, not tolerance.
        assert_eq!(
            plain.output.pixels().len(),
            observed.output.pixels().len(),
            "config bits {bits}: output shape changed under telemetry"
        );
        for (i, (a, b)) in plain
            .output
            .pixels()
            .iter()
            .zip(observed.output.pixels())
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "config bits {bits}: pixel {i} differs with telemetry on"
            );
        }

        // Identical simulated seconds, exactly.
        assert_eq!(
            plain.total_s, observed.total_s,
            "config bits {bits}: simulated time changed under telemetry"
        );

        // And the telemetry agrees with the report it was read from.
        assert_eq!(tel.simulated_s, observed.total_s, "config bits {bits}");
        assert!(tel.kernels.len() > 1, "config bits {bits}: no kernels seen");
    }
}

#[test]
fn plan_telemetry_matches_single_shot_telemetry() {
    let img = generate::natural(96, 96, 9);
    let ctx = Context::new(spec());
    let pipe = GpuPipeline::new(ctx.clone(), SharpnessParams::default(), OptConfig::all());
    let (_, one_shot) = pipe.run_with_telemetry(&img).expect("one-shot run");

    let mut plan = pipe.prepared(96, 96).expect("plan");
    plan.run(&img).expect("plan run");
    let planned = plan.telemetry();

    assert_eq!(planned.simulated_s, one_shot.simulated_s);
    assert_eq!(planned.kernels.len(), one_shot.kernels.len());
    for k in &one_shot.kernels {
        let p = planned.kernel(&k.name).expect("kernel present in plan run");
        assert_eq!(p.dispatches, k.dispatches, "{}", k.name);
        assert_eq!(p.counters, k.counters, "{}", k.name);
    }
}

#[test]
fn telemetry_denominators_use_true_pixels_on_odd_shapes() {
    // On widths that are not a multiple of 4 the device rows are padded to
    // the vec4 stride, but every per-pixel metric must divide by the true
    // w*h (the padding lanes only add their small real traffic on top).
    let (w, h) = (257usize, 129usize);
    let img = generate::natural(w, h, 3);
    let ctx = Context::new(spec());
    let pipe = GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all());
    let (_, tel) = pipe.run_with_telemetry(&img).expect("odd-shape run");
    assert_eq!(tel.pixels(), (w * h) as u64);
    let loads = tel
        .sobel_loads_per_source_pixel()
        .expect("sobel_vec4 dispatched");
    // 4.5 exactly when aligned; the 260-wide stride adds ~1.2% here.
    assert!(
        (4.4..4.7).contains(&loads),
        "vec4 sobel loads/px {loads} out of window at {w}x{h}"
    );
}

// ---- the committed baseline ladder reproduces the paper's claims ------

#[test]
fn baseline_ladder_carries_the_sobel_load_claims() {
    let configs = baseline_configs();
    let naive = &configs.first().expect("ladder has steps").1;
    let full = &configs.last().expect("ladder has steps").1;
    assert!(!naive.vectorization && full.vectorization);

    let gauge = |reg: &MetricsRegistry, name: &str| {
        assert!(reg.get(name).is_some(), "missing {name}");
        reg.gauge(name)
    };

    let base = baseline_registry(naive).expect("base config runs");
    let opt = baseline_registry(full).expect("opt config runs");
    let naive_loads = gauge(&base, "kernel.sobel.loads_per_source_pixel");
    let vec_loads = gauge(&opt, "kernel.sobel_vec4.loads_per_source_pixel");
    assert!(
        (7.5..8.0).contains(&naive_loads),
        "naive sobel loads/px {naive_loads} out of the paper's ~8 window"
    );
    assert!(
        (vec_loads - 4.5).abs() < 0.1,
        "vec4 sobel loads/px {vec_loads} off the paper's ~4.5 claim"
    );
    assert!(vec_loads < naive_loads);
}
