//! Arbitrary-dimension acceptance tests: the pipeline accepts any shape
//! of at least 3×3, and the equivalence ladder holds on shapes that are
//! not multiples of 4 — every non-GPU-reduction config reproduces the CPU
//! reference bit-exactly, toggling vectorization never changes a bit, and
//! the sanitizer sweeps clean on ragged shapes.

use imagekit::generate;
use sharpness_core::gpu::{GpuPipeline, OptConfig, Tuning};
use sharpness_core::params::SharpnessParams;
use sharpness_core::CpuPipeline;
use simgpu::prelude::*;

fn spec() -> DeviceSpec {
    DeviceSpec::firepro_w8000()
}

fn vctx() -> Context {
    Context::with_validation(spec())
}

/// All 64 combinations of the six optimization flags.
fn all_configs() -> Vec<OptConfig> {
    (0..64u32)
        .map(|bits| OptConfig {
            data_transfer: bits & 1 != 0,
            kernel_fusion: bits & 2 != 0,
            reduction_gpu: bits & 4 != 0,
            vectorization: bits & 8 != 0,
            border_gpu: bits & 16 != 0,
            others: bits & 32 != 0,
        })
        .collect()
}

/// Asserts the equivalence ladder for one image across `configs`:
/// non-GPU-reduction configs match the CPU reference bit-exactly,
/// GPU-reduction configs match within the float-summation tolerance, and
/// each config matches its vectorization-toggled twin bit-exactly (the
/// pEdge matrix, stride padding included, is identical either way, so even
/// the GPU tree reduction sees the same bits).
fn assert_equivalence(w: usize, h: usize, seed: u64, configs: &[OptConfig], tuning: Tuning) {
    let img = generate::natural(w, h, seed);
    let cpu = CpuPipeline::new(SharpnessParams::default())
        .run(&img)
        .expect("cpu reference");
    for cfg in configs {
        let gpu = GpuPipeline::new(vctx(), SharpnessParams::default(), *cfg)
            .with_tuning(tuning)
            .run(&img)
            .unwrap_or_else(|e| panic!("{w}x{h} {cfg:?}: {e}"));
        if cfg.reduction_gpu {
            let diff = gpu.output.max_abs_diff(&cpu.output);
            assert!(diff < 0.05, "{w}x{h} {cfg:?}: diff {diff}");
        } else {
            assert_eq!(gpu.output, cpu.output, "{w}x{h} {cfg:?}");
        }
        let twin = OptConfig {
            vectorization: !cfg.vectorization,
            ..*cfg
        };
        let tgpu = GpuPipeline::new(vctx(), SharpnessParams::default(), twin)
            .with_tuning(tuning)
            .run(&img)
            .unwrap_or_else(|e| panic!("{w}x{h} {twin:?}: {e}"));
        assert_eq!(
            gpu.output, tgpu.output,
            "{w}x{h} {cfg:?}: vectorization toggle changed pixels"
        );
    }
}

#[test]
fn small_odd_shapes_all_64_configs() {
    for (w, h) in [(3, 3), (5, 7), (31, 17), (33, 29)] {
        assert_equivalence(w, h, 41, &all_configs(), Tuning::default());
    }
}

#[test]
fn gpu_border_forced_on_small_odd_shapes() {
    // Default tuning keeps the border on the CPU below 768 px; force the
    // GPU border kernels so their ragged paths run end-to-end too.
    let tuning = Tuning {
        border_gpu_min_width: 0,
        ..Tuning::default()
    };
    let configs: Vec<OptConfig> = all_configs().into_iter().filter(|c| c.border_gpu).collect();
    for (w, h) in [(5, 7), (13, 11), (33, 29)] {
        assert_equivalence(w, h, 43, &configs, tuning);
    }
}

#[test]
fn large_odd_shapes_representative_configs() {
    // 1001x701 (both axes odd), 1000x700 (aligned axes, ragged downscale
    // groups), 1023x769 (odd, width crosses the GPU-border crossover so
    // OptConfig::all() takes the device border path).
    let configs = [
        OptConfig::none(),
        OptConfig::all(),
        OptConfig {
            data_transfer: true,
            vectorization: true,
            kernel_fusion: true,
            ..OptConfig::none()
        },
        OptConfig {
            reduction_gpu: true,
            kernel_fusion: true,
            ..OptConfig::none()
        },
    ];
    for (w, h) in [(1001, 701), (1000, 700), (1023, 769)] {
        assert_equivalence(w, h, 47, &configs, Tuning::default());
    }
}

#[test]
fn sanitizer_is_clean_on_odd_shapes() {
    for cfg in [
        OptConfig::none(),
        OptConfig::all(),
        OptConfig {
            vectorization: true,
            reduction_gpu: true,
            ..OptConfig::none()
        },
    ] {
        for (w, h) in [(3, 3), (5, 7), (33, 29), (101, 67)] {
            let img = generate::natural(w, h, 53);
            let ctx = Context::sanitized(spec());
            GpuPipeline::new(ctx.clone(), SharpnessParams::default(), cfg)
                .run(&img)
                .expect("sanitized odd-shape run failed");
            let report = ctx.sanitize_report().expect("sanitizer was enabled");
            assert!(report.is_clean(), "{w}x{h} {cfg:?}: {}", report.summary());
        }
    }
}

/// The full acceptance sweep of the issue: all 64 configs at 1001×701.
/// Heavy on one core — run explicitly with
/// `cargo test -q --test arbitrary_shapes -- --ignored` or
/// `scripts/ci.sh --full`.
#[test]
#[ignore = "full 64-config sweep at 1001x701 is expensive; run via ci.sh --full"]
fn full_sweep_1001x701_all_configs() {
    assert_equivalence(1001, 701, 59, &all_configs(), Tuning::default());
}
