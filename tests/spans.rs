//! Hierarchical span tracing is observation-only: enabling spans must not
//! perturb a single pixel bit or a single simulated-clock bit, on any
//! optimization config, shape, or schedule, and must stay sanitizer-clean.
//! The structural tests then pin the shape of the tree every execution
//! mode emits (frame → phase → band → kernel dispatch → slice, plus
//! transfer/readback/host/sync leaves).

use imagekit::generate;
use sharpness::prelude::*;
use simgpu::span::{aggregate, span_tree, SpanKind, SpanRecord};

fn spec() -> DeviceSpec {
    DeviceSpec::firepro_w8000()
}

fn all_configs() -> Vec<OptConfig> {
    (0u32..64)
        .map(|bits| OptConfig {
            data_transfer: bits & 1 != 0,
            kernel_fusion: bits & 2 != 0,
            reduction_gpu: bits & 4 != 0,
            vectorization: bits & 8 != 0,
            border_gpu: bits & 16 != 0,
            others: bits & 32 != 0,
        })
        .collect()
}

fn schedules() -> [Schedule; 2] {
    [Schedule::Monolithic, Schedule::Banded(32)]
}

/// Runs one config/schedule with and without spans and asserts bit
/// identity of pixels and simulated seconds.
fn assert_span_invariant(w: usize, h: usize, seed: u64, cfg: OptConfig, schedule: Schedule) {
    let img = generate::natural(w, h, seed);
    let plain = GpuPipeline::new(Context::new(spec()), SharpnessParams::default(), cfg)
        .with_schedule(schedule)
        .run(&img)
        .unwrap();
    let spanned = GpuPipeline::new(
        Context::new(spec()).with_spans(),
        SharpnessParams::default(),
        cfg,
    )
    .with_schedule(schedule)
    .run(&img)
    .unwrap();
    assert_eq!(
        plain.output.pixels(),
        spanned.output.pixels(),
        "pixels differ with spans on, {cfg:?} {schedule:?} at {w}x{h}"
    );
    assert_eq!(
        plain.total_s.to_bits(),
        spanned.total_s.to_bits(),
        "simulated seconds differ with spans on, {cfg:?} {schedule:?} at {w}x{h}"
    );
}

#[test]
fn spans_are_observation_only_across_all_configs_and_schedules() {
    for cfg in all_configs() {
        for schedule in schedules() {
            assert_span_invariant(64, 64, 7, cfg, schedule);
        }
    }
}

#[test]
fn spans_are_observation_only_on_ragged_shapes() {
    // Ragged widths exercise the strided tails; the full 64-config sweep
    // above covers the flag space, so a representative subset suffices.
    for cfg in [
        OptConfig::none(),
        OptConfig::all(),
        OptConfig {
            vectorization: true,
            reduction_gpu: true,
            ..OptConfig::none()
        },
    ] {
        for schedule in schedules() {
            assert_span_invariant(61, 47, 13, cfg, schedule);
        }
    }
}

#[test]
fn spans_stay_sanitizer_clean() {
    let img = generate::natural(64, 64, 19);
    for schedule in schedules() {
        let ctx = Context::sanitized(spec()).with_spans();
        GpuPipeline::new(ctx.clone(), SharpnessParams::default(), OptConfig::all())
            .with_schedule(schedule)
            .run(&img)
            .unwrap();
        assert!(
            ctx.sanitize_report().unwrap().is_clean(),
            "sanitizer violations with spans on, {schedule:?}"
        );
    }
}

/// Prepared plan for one frame with spans on; returns the frame's spans.
fn frame_spans(cfg: OptConfig, schedule: Schedule, w: usize, h: usize) -> Vec<SpanRecord> {
    let img = generate::natural(w, h, 3);
    let pipe = GpuPipeline::new(
        Context::new(spec()).with_spans(),
        SharpnessParams::default(),
        cfg,
    )
    .with_schedule(schedule);
    let mut plan = pipe.prepared(w, h).unwrap();
    let mut out = vec![0.0f32; w * h];
    plan.run_into(&img, &mut out).unwrap();
    plan.spans()
}

#[test]
fn monolithic_tree_has_frame_phases_and_leaves() {
    let spans = frame_spans(OptConfig::all(), Schedule::Monolithic, 64, 64);
    let root = &spans[0];
    assert_eq!(root.kind, SpanKind::Frame);
    assert_eq!(&*root.name, "frame");
    assert_eq!(root.parent, u64::MAX);
    // Every phase of the monolithic schedule appears, in order, under the
    // frame root.
    let phases: Vec<&str> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Phase)
        .map(|s| &*s.name)
        .collect();
    assert_eq!(
        phases,
        [
            "upload",
            "downscale",
            "upscale",
            "sobel",
            "reduction",
            "sharpen",
            "readback"
        ]
    );
    for s in spans.iter().filter(|s| s.kind == SpanKind::Phase) {
        assert_eq!(s.parent, root.id, "phase {} not under frame", s.name);
    }
    // Kernel leaves nest under phases, transfers under upload/readback.
    let sobel = spans
        .iter()
        .find(|s| s.kind == SpanKind::Kernel && s.name.starts_with("sobel"))
        .expect("sobel kernel span");
    let sobel_phase = spans.iter().find(|s| s.id == sobel.parent).unwrap();
    assert_eq!(sobel_phase.kind, SpanKind::Phase);
    assert_eq!(&*sobel_phase.name, "sobel");
    assert!(spans.iter().any(|s| s.kind == SpanKind::Transfer));
    assert!(spans.iter().any(|s| s.kind == SpanKind::Readback));
    // All-opts removes intermediate finishes; exactly one sync remains.
    assert_eq!(spans.iter().filter(|s| s.kind == SpanKind::Sync).count(), 1);
    // No slices in a monolithic frame.
    assert!(spans.iter().all(|s| s.kind != SpanKind::Slice));
}

#[test]
fn banded_tree_adds_bands_and_slices() {
    let spans = frame_spans(OptConfig::all(), Schedule::Banded(16), 64, 64);
    // 64 rows at 16-row bands → 4 bands in phase A and 4 in phase B.
    let bands: Vec<&SpanRecord> = spans.iter().filter(|s| s.kind == SpanKind::Band).collect();
    assert_eq!(bands.len(), 8, "{}", span_tree(&spans));
    // Slices nest under bands; each band holds at least one slice.
    let slices: Vec<&SpanRecord> = spans.iter().filter(|s| s.kind == SpanKind::Slice).collect();
    assert!(!slices.is_empty());
    for sl in &slices {
        let parent = spans.iter().find(|s| s.id == sl.parent).unwrap();
        assert!(
            parent.kind == SpanKind::Band || parent.kind == SpanKind::Phase,
            "slice {} under {:?}",
            sl.name,
            parent.kind
        );
        // A slice's simulated duration is zero: the clock moves at commit.
        assert_eq!(sl.sim_s(), 0.0);
    }
    // The committed kernels carry the simulated time instead.
    let sobel = spans
        .iter()
        .find(|s| s.kind == SpanKind::Kernel && s.name.starts_with("sobel"))
        .unwrap();
    assert!(sobel.sim_s() > 0.0);
    // Megapass phases bracket the band loops.
    let phase_names: Vec<&str> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Phase)
        .map(|s| &*s.name)
        .collect();
    assert!(phase_names.contains(&"megapass:A"));
    assert!(phase_names.contains(&"megapass:B"));
}

#[test]
fn wall_and_sim_intervals_nest_within_parents() {
    for schedule in schedules() {
        let spans = frame_spans(OptConfig::all(), schedule, 64, 64);
        for s in &spans {
            assert!(s.wall_end_ns >= s.wall_start_ns);
            assert!(s.sim_end_s >= s.sim_start_s);
            if s.parent == u64::MAX {
                continue;
            }
            let p = spans.iter().find(|t| t.id == s.parent).unwrap();
            assert!(
                s.wall_start_ns >= p.wall_start_ns && s.wall_end_ns <= p.wall_end_ns,
                "{schedule:?}: wall interval of {} escapes parent {}",
                s.name,
                p.name
            );
            assert!(
                s.sim_start_s >= p.sim_start_s && s.sim_end_s <= p.sim_end_s,
                "{schedule:?}: sim interval of {} escapes parent {}",
                s.name,
                p.name
            );
        }
    }
}

#[test]
fn frame_span_sim_time_matches_queue_total() {
    for schedule in schedules() {
        let img = generate::natural(64, 64, 3);
        let pipe = GpuPipeline::new(
            Context::new(spec()).with_spans(),
            SharpnessParams::default(),
            OptConfig::all(),
        )
        .with_schedule(schedule);
        let mut plan = pipe.prepared(64, 64).unwrap();
        let mut out = vec![0.0f32; 64 * 64];
        plan.run_into(&img, &mut out).unwrap();
        let spans = plan.spans();
        // The clock advances as `clock = start + dur` per command, so the
        // frame's close time is exactly the chronologically latest record
        // end, bit for bit (the record vector itself is in logical, not
        // clock, order under banded scheduling).
        let total = plan
            .records()
            .iter()
            .map(|r| r.start_s + r.duration_s)
            .fold(0.0f64, f64::max);
        let frame = &spans[0];
        assert_eq!(frame.sim_start_s, 0.0);
        assert_eq!(
            frame.sim_end_s.to_bits(),
            total.to_bits(),
            "{schedule:?}: frame span must cover the whole simulated frame"
        );
        // Kernel leaves carry exactly their records' simulated intervals.
        for r in plan
            .records()
            .iter()
            .filter(|r| matches!(r.kind, simgpu::queue::CommandKind::Kernel))
        {
            let s = spans
                .iter()
                .find(|s| {
                    s.kind == SpanKind::Kernel
                        && s.name == r.name
                        && s.sim_start_s.to_bits() == r.start_s.to_bits()
                })
                .unwrap_or_else(|| panic!("no span for kernel {}", r.name));
            assert_eq!(
                s.sim_end_s.to_bits(),
                (r.start_s + r.duration_s).to_bits(),
                "kernel {} span interval drifted from its record",
                r.name
            );
        }
    }
}

#[test]
fn plan_reuse_resets_the_ring_each_frame() {
    let img = generate::natural(64, 64, 3);
    let pipe = GpuPipeline::new(
        Context::new(spec()).with_spans(),
        SharpnessParams::default(),
        OptConfig::all(),
    );
    let mut plan = pipe.prepared(64, 64).unwrap();
    let mut out = vec![0.0f32; 64 * 64];
    plan.run_into(&img, &mut out).unwrap();
    let first = plan.spans();
    plan.run_into(&img, &mut out).unwrap();
    let second = plan.spans();
    assert_eq!(first.len(), second.len());
    // Same tree shape; ids keep increasing across frames.
    assert!(second[0].id > first[0].id);
    assert_eq!(&*second[0].name, "frame");
}

#[test]
fn throughput_engine_emits_one_tree_per_frame() {
    let ctx = Context::new(spec()).with_spans();
    let pipe = GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all());
    let frames: Vec<_> = (0..4).map(|i| generate::natural(64, 64, 100 + i)).collect();
    let rep = ThroughputEngine::new(pipe, 2).process(&frames).unwrap();
    assert_eq!(rep.spans.len(), 4);
    for (i, tree) in rep.spans.iter().enumerate() {
        assert!(!tree.is_empty(), "frame {i} has no spans");
        assert_eq!(tree[0].kind, SpanKind::Frame, "frame {i}");
    }
    // Spans off → empty per-frame trees, same pixels.
    let plain = ThroughputEngine::new(
        GpuPipeline::new(
            Context::new(spec()),
            SharpnessParams::default(),
            OptConfig::all(),
        ),
        2,
    )
    .process(&frames)
    .unwrap();
    assert!(plain.spans.iter().all(Vec::is_empty));
    assert_eq!(plain.outputs, rep.outputs);
    assert_eq!(plain.frames, rep.frames);
}

#[test]
fn strip_pipeline_runs_with_spans_and_matches() {
    use sharpness::core::gpu::strips::StripPipeline;
    let img = generate::natural(64, 128, 4);
    let plain = StripPipeline::new(
        GpuPipeline::new(
            Context::new(spec()),
            SharpnessParams::default(),
            OptConfig::all(),
        ),
        32,
    )
    .unwrap()
    .run(&img)
    .unwrap();
    let spanned = StripPipeline::new(
        GpuPipeline::new(
            Context::new(spec()).with_spans(),
            SharpnessParams::default(),
            OptConfig::all(),
        ),
        32,
    )
    .unwrap()
    .run(&img)
    .unwrap();
    assert_eq!(plain.output.pixels(), spanned.output.pixels());
    assert_eq!(plain.total_s.to_bits(), spanned.total_s.to_bits());
    assert_eq!(plain.mean.to_bits(), spanned.mean.to_bits());
}

#[test]
fn aggregation_and_exports_cover_the_frame_tree() {
    let spans = frame_spans(OptConfig::all(), Schedule::Banded(16), 64, 64);

    // Path aggregation folds the repeated bands.
    let agg = aggregate(&spans);
    let band_a = agg
        .iter()
        .find(|a| a.path == "frame/megapass:A/band")
        .expect("aggregated band path");
    assert_eq!(band_a.count, 4);

    // Terminal renderer shows the folded tree.
    let tree = span_tree(&spans);
    assert!(tree.contains("frame"), "{tree}");
    assert!(tree.contains("band ×4"), "{tree}");

    // Metrics export lands in the span.* namespace.
    let mut reg = simgpu::metrics::MetricsRegistry::new();
    simgpu::span::to_registry(&spans, &mut reg);
    assert_eq!(reg.counter("span.frame.count"), 1);
    assert!(reg.gauge("span.frame.sim_s") > 0.0);
    let jsonl = reg.to_jsonl();
    assert!(jsonl.contains("span.frame/megapass:A/band"));

    // Chrome trace gains the span process and stays brace-balanced.
    let img = generate::natural(64, 64, 3);
    let pipe = GpuPipeline::new(
        Context::new(spec()).with_spans(),
        SharpnessParams::default(),
        OptConfig::all(),
    );
    let mut plan = pipe.prepared(64, 64).unwrap();
    let mut out = vec![0.0f32; 64 * 64];
    plan.run_into(&img, &mut out).unwrap();
    let j = simgpu::trace::to_chrome_json_with_spans(plan.records(), &plan.spans());
    assert!(j.contains("\"spans (wall clock)\""));
    assert_eq!(j.matches('{').count(), j.matches('}').count());
}
