//! Cross-crate integration tests: the GPU pipeline must reproduce the CPU
//! reference output for every optimization configuration, on every
//! workload shape, under the write-race-validating context.

use imagekit::{generate, ImageF32};
use sharpness::prelude::*;

fn vctx() -> Context {
    Context::with_validation(DeviceSpec::firepro_w8000())
}

fn all_configs() -> Vec<OptConfig> {
    // Every combination of the six flags.
    (0u32..64)
        .map(|bits| OptConfig {
            data_transfer: bits & 1 != 0,
            kernel_fusion: bits & 2 != 0,
            reduction_gpu: bits & 4 != 0,
            vectorization: bits & 8 != 0,
            border_gpu: bits & 16 != 0,
            others: bits & 32 != 0,
        })
        .collect()
}

#[test]
fn every_opt_combination_matches_cpu() {
    let img = generate::natural(64, 64, 77);
    let cpu = CpuPipeline::new(SharpnessParams::default())
        .run(&img)
        .unwrap();
    for opts in all_configs() {
        let gpu = GpuPipeline::new(vctx(), SharpnessParams::default(), opts)
            .run(&img)
            .unwrap_or_else(|e| panic!("{opts:?}: {e}"));
        let diff = gpu.output.max_abs_diff(&cpu.output);
        if opts.reduction_gpu {
            assert!(diff < 0.05, "{opts:?}: diff {diff}");
        } else {
            // CPU-side reduction computes the identical mean, so the whole
            // pipeline must agree bit-exactly.
            assert_eq!(gpu.output, cpu.output, "{opts:?}");
        }
    }
}

#[test]
fn gpu_border_forced_on_still_matches() {
    // Push the crossover to zero so every combination takes the GPU border
    // path even on a 64-pixel image.
    let img = generate::natural(64, 64, 3);
    let cpu = CpuPipeline::new(SharpnessParams::default())
        .run(&img)
        .unwrap();
    let tuning = Tuning {
        border_gpu_min_width: 0,
        ..Tuning::default()
    };
    for base in [OptConfig::none(), OptConfig::all()] {
        let opts = OptConfig {
            border_gpu: true,
            ..base
        };
        let gpu = GpuPipeline::new(vctx(), SharpnessParams::default(), opts)
            .with_tuning(tuning)
            .run(&img)
            .unwrap();
        assert!(gpu.output.max_abs_diff(&cpu.output) < 0.05);
    }
}

#[test]
fn non_square_images_work() {
    for (w, h) in [(64, 32), (32, 64), (128, 48), (48, 128), (20, 16), (16, 20)] {
        let img = generate::natural(w, h, 9);
        let cpu = CpuPipeline::new(SharpnessParams::default())
            .run(&img)
            .unwrap();
        let gpu = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::all())
            .run(&img)
            .unwrap_or_else(|e| panic!("{w}x{h}: {e}"));
        let diff = gpu.output.max_abs_diff(&cpu.output);
        assert!(diff < 0.05, "{w}x{h}: diff {diff}");
    }
}

#[test]
fn extreme_parameters_stay_in_range() {
    let img = generate::checkerboard(64, 64, 4);
    for (gain, gamma, osc) in [(0.01, 0.2, 0.0), (4.0, 2.0, 1.0), (1.0, 0.5, 0.5)] {
        let params = SharpnessParams {
            gain,
            gamma,
            osc,
            ..SharpnessParams::default()
        };
        let cpu = CpuPipeline::new(params).run(&img).unwrap();
        let gpu = GpuPipeline::new(vctx(), params, OptConfig::all())
            .run(&img)
            .unwrap();
        assert!(gpu.output.max_abs_diff(&cpu.output) < 0.05);
        assert_eq!(imagekit::metrics::out_of_range_fraction(&gpu.output), 0.0);
    }
}

#[test]
fn degenerate_content_is_handled() {
    // Constant (zero-edge) images hit the eps path of the strength curve;
    // extreme contrast hits both overshoot branches everywhere.
    for img in [
        ImageF32::filled(32, 32, 0.0),
        ImageF32::filled(32, 32, 255.0),
        generate::checkerboard(32, 32, 1),
    ] {
        let cpu = CpuPipeline::new(SharpnessParams::default())
            .run(&img)
            .unwrap();
        let gpu = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::all())
            .run(&img)
            .unwrap();
        assert!(gpu.output.max_abs_diff(&cpu.output) < 0.05);
        assert_eq!(imagekit::metrics::out_of_range_fraction(&gpu.output), 0.0);
    }
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let img = generate::natural(96, 96, 13);
    let p = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::all());
    let a = p.run(&img).unwrap();
    let b = p.run(&img).unwrap();
    assert_eq!(a.output, b.output);
    assert_eq!(a.total_s, b.total_s);
    assert_eq!(a.stages.len(), b.stages.len());
}

#[test]
fn prepared_plan_matches_fresh_runs_for_every_config() {
    // The persistent-plan hot path must be invisible: bit-identical pixels
    // and identical simulated seconds versus a fresh-buffer run, for every
    // optimization combination, across repeated frames on one plan.
    let imgs = [generate::natural(64, 64, 21), generate::natural(64, 64, 22)];
    for opts in all_configs() {
        let pipe = GpuPipeline::new(vctx(), SharpnessParams::default(), opts);
        let mut plan = pipe.prepared(64, 64).unwrap();
        for img in &imgs {
            let fresh = pipe.run(img).unwrap_or_else(|e| panic!("{opts:?}: {e}"));
            let planned = plan.run(img).unwrap_or_else(|e| panic!("{opts:?}: {e}"));
            assert_eq!(planned.output, fresh.output, "{opts:?}: pixels diverged");
            assert_eq!(
                planned.total_s, fresh.total_s,
                "{opts:?}: simulated time diverged"
            );
            assert_eq!(
                planned.stages, fresh.stages,
                "{opts:?}: stage breakdown diverged"
            );
        }
    }
}

#[test]
fn pooled_context_is_equivalent_to_unpooled() {
    let img = generate::natural(96, 96, 41);
    let params = SharpnessParams::default();
    let pooled = Context::new(DeviceSpec::firepro_w8000());
    let unpooled = Context::new(DeviceSpec::firepro_w8000()).with_pooling(false);
    let a = GpuPipeline::new(pooled, params, OptConfig::all())
        .run(&img)
        .unwrap();
    let b = GpuPipeline::new(unpooled, params, OptConfig::all())
        .run(&img)
        .unwrap();
    assert_eq!(a.output, b.output);
    assert_eq!(a.total_s, b.total_s);
}

#[test]
fn repeated_runs_recycle_buffers_without_live_growth() {
    let img = generate::natural(64, 64, 8);
    let ctx = Context::new(DeviceSpec::firepro_w8000());
    let pipe = GpuPipeline::new(ctx.clone(), SharpnessParams::default(), OptConfig::all());
    pipe.run(&img).unwrap(); // warm the pool
    let warm = ctx.pool_stats();
    for _ in 0..5 {
        pipe.run(&img).unwrap();
    }
    let after = ctx.pool_stats();
    assert!(
        after.hits > warm.hits,
        "warm runs should recycle pooled slabs (hits {} -> {})",
        warm.hits,
        after.hits
    );
    // Steady state: no buffer outlives its run, so the live count cannot
    // grow across runs.
    assert_eq!(after.live, warm.live, "live allocations grew across runs");
    // And warm runs should introduce no fresh allocations at all.
    assert_eq!(after.misses, warm.misses, "warm runs still allocated");
}

#[test]
fn cpu_border_path_allocates_no_device_buffers_after_warmup() {
    // border_gpu=false routes the final border rows/columns through the
    // host-side cpu_border fixup, which historically built per-frame
    // temporaries; warm frames must stay allocation-free there too.
    let img = generate::natural(97, 61, 12);
    let ctx = Context::new(DeviceSpec::firepro_w8000());
    let cfg = OptConfig {
        border_gpu: false,
        ..OptConfig::all()
    };
    let pipe = GpuPipeline::new(ctx.clone(), SharpnessParams::default(), cfg);
    let mut out = vec![0.0f32; 97 * 61];
    let mut plan = pipe.prepared(97, 61).unwrap();
    plan.run_into(&img, &mut out).unwrap(); // warm scratch + pool
    let warm = ctx.pool_stats();
    for _ in 0..4 {
        plan.run_into(&img, &mut out).unwrap();
    }
    let after = ctx.pool_stats();
    assert_eq!(after.misses, warm.misses, "warm cpu-border run allocated");
    assert_eq!(after.live, warm.live, "live buffers grew");
}

#[test]
fn plan_run_into_allocates_no_device_buffers_after_warmup() {
    let img = generate::natural(97, 61, 12);
    let ctx = Context::new(DeviceSpec::firepro_w8000());
    let pipe = GpuPipeline::new(ctx.clone(), SharpnessParams::default(), OptConfig::all());
    let mut out = vec![0.0f32; 97 * 61];
    for schedule in [Schedule::Monolithic, Schedule::Banded(32)] {
        let mut plan = pipe
            .clone()
            .with_schedule(schedule)
            .prepared(97, 61)
            .unwrap();
        plan.run_into(&img, &mut out).unwrap(); // warm scratch + pool
        let warm = ctx.pool_stats();
        for _ in 0..4 {
            plan.run_into(&img, &mut out).unwrap();
        }
        let after = ctx.pool_stats();
        // The plan owns every buffer it needs: warm frames must neither
        // allocate fresh device storage nor leave anything extra live.
        assert_eq!(
            after.misses, warm.misses,
            "{schedule:?}: warm run_into still allocated"
        );
        assert_eq!(after.live, warm.live, "{schedule:?}: live buffers grew");
    }
}

#[test]
fn throughput_engine_outputs_match_the_single_frame_path() {
    let frames: Vec<_> = (0..5).map(|i| generate::natural(64, 64, 60 + i)).collect();
    let pipe = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::all());
    let report = ThroughputEngine::new(pipe.clone(), 2)
        .process(&frames)
        .unwrap();
    for (frame, out) in frames.iter().zip(&report.outputs) {
        assert_eq!(&pipe.run(frame).unwrap().output, out);
    }
    assert!(report.pipelined_s <= report.serial_s);
}

#[test]
fn umbrella_prelude_compiles_the_quickstart_flow() {
    let image = generate::natural(32, 32, 1);
    let ctx = Context::new(DeviceSpec::firepro_w8000());
    let run = GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all())
        .run(&image)
        .unwrap();
    assert_eq!(run.output.width(), 32);
    assert!(run.total_s > 0.0);
}
