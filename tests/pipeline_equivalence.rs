//! Cross-crate integration tests: the GPU pipeline must reproduce the CPU
//! reference output for every optimization configuration, on every
//! workload shape, under the write-race-validating context.

use imagekit::{generate, ImageF32};
use sharpness::prelude::*;

fn vctx() -> Context {
    Context::with_validation(DeviceSpec::firepro_w8000())
}

fn all_configs() -> Vec<OptConfig> {
    // Every combination of the six flags.
    (0u32..64)
        .map(|bits| OptConfig {
            data_transfer: bits & 1 != 0,
            kernel_fusion: bits & 2 != 0,
            reduction_gpu: bits & 4 != 0,
            vectorization: bits & 8 != 0,
            border_gpu: bits & 16 != 0,
            others: bits & 32 != 0,
        })
        .collect()
}

#[test]
fn every_opt_combination_matches_cpu() {
    let img = generate::natural(64, 64, 77);
    let cpu = CpuPipeline::new(SharpnessParams::default()).run(&img).unwrap();
    for opts in all_configs() {
        let gpu = GpuPipeline::new(vctx(), SharpnessParams::default(), opts)
            .run(&img)
            .unwrap_or_else(|e| panic!("{opts:?}: {e}"));
        let diff = gpu.output.max_abs_diff(&cpu.output);
        if opts.reduction_gpu {
            assert!(diff < 0.05, "{opts:?}: diff {diff}");
        } else {
            // CPU-side reduction computes the identical mean, so the whole
            // pipeline must agree bit-exactly.
            assert_eq!(gpu.output, cpu.output, "{opts:?}");
        }
    }
}

#[test]
fn gpu_border_forced_on_still_matches() {
    // Push the crossover to zero so every combination takes the GPU border
    // path even on a 64-pixel image.
    let img = generate::natural(64, 64, 3);
    let cpu = CpuPipeline::new(SharpnessParams::default()).run(&img).unwrap();
    let tuning = Tuning { border_gpu_min_width: 0, ..Tuning::default() };
    for base in [OptConfig::none(), OptConfig::all()] {
        let opts = OptConfig { border_gpu: true, ..base };
        let gpu = GpuPipeline::new(vctx(), SharpnessParams::default(), opts)
            .with_tuning(tuning)
            .run(&img)
            .unwrap();
        assert!(gpu.output.max_abs_diff(&cpu.output) < 0.05);
    }
}

#[test]
fn non_square_images_work() {
    for (w, h) in [(64, 32), (32, 64), (128, 48), (48, 128), (20, 16), (16, 20)] {
        let img = generate::natural(w, h, 9);
        let cpu = CpuPipeline::new(SharpnessParams::default()).run(&img).unwrap();
        let gpu = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::all())
            .run(&img)
            .unwrap_or_else(|e| panic!("{w}x{h}: {e}"));
        let diff = gpu.output.max_abs_diff(&cpu.output);
        assert!(diff < 0.05, "{w}x{h}: diff {diff}");
    }
}

#[test]
fn extreme_parameters_stay_in_range() {
    let img = generate::checkerboard(64, 64, 4);
    for (gain, gamma, osc) in [(0.01, 0.2, 0.0), (4.0, 2.0, 1.0), (1.0, 0.5, 0.5)] {
        let params = SharpnessParams { gain, gamma, osc, ..SharpnessParams::default() };
        let cpu = CpuPipeline::new(params).run(&img).unwrap();
        let gpu = GpuPipeline::new(vctx(), params, OptConfig::all()).run(&img).unwrap();
        assert!(gpu.output.max_abs_diff(&cpu.output) < 0.05);
        assert_eq!(imagekit::metrics::out_of_range_fraction(&gpu.output), 0.0);
    }
}

#[test]
fn degenerate_content_is_handled() {
    // Constant (zero-edge) images hit the eps path of the strength curve;
    // extreme contrast hits both overshoot branches everywhere.
    for img in [
        ImageF32::filled(32, 32, 0.0),
        ImageF32::filled(32, 32, 255.0),
        generate::checkerboard(32, 32, 1),
    ] {
        let cpu = CpuPipeline::new(SharpnessParams::default()).run(&img).unwrap();
        let gpu = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::all())
            .run(&img)
            .unwrap();
        assert!(gpu.output.max_abs_diff(&cpu.output) < 0.05);
        assert_eq!(imagekit::metrics::out_of_range_fraction(&gpu.output), 0.0);
    }
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let img = generate::natural(96, 96, 13);
    let p = GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::all());
    let a = p.run(&img).unwrap();
    let b = p.run(&img).unwrap();
    assert_eq!(a.output, b.output);
    assert_eq!(a.total_s, b.total_s);
    assert_eq!(a.stages.len(), b.stages.len());
}

#[test]
fn umbrella_prelude_compiles_the_quickstart_flow() {
    let image = generate::natural(32, 32, 1);
    let ctx = Context::new(DeviceSpec::firepro_w8000());
    let run = GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all())
        .run(&image)
        .unwrap();
    assert_eq!(run.output.width(), 32);
    assert!(run.total_s > 0.0);
}
