//! Failure-injection tests: the runtime must reject malformed inputs and
//! catch data races instead of silently corrupting results.

use sharpness::prelude::*;
use sharpness::simgpu::error::Error;
use sharpness::simgpu::kernel::{items, KernelDesc};

fn vctx() -> Context {
    Context::with_validation(DeviceSpec::firepro_w8000())
}

#[test]
fn racy_kernel_is_rejected_with_index() {
    let ctx = vctx();
    let mut q = ctx.queue();
    let out = ctx.buffer::<f32>("out", 8);
    let w = out.write_view();
    let desc = KernelDesc::new("racy", [32, 1], [8, 1]);
    let err = q
        .run(&desc, &[&out], |g| {
            for l in items(g.group_size) {
                g.store(&w, l[0] % 8, 1.0); // all groups hit the same slots
            }
        })
        .unwrap_err();
    match err {
        Error::WriteRace { kernel, index } => {
            assert_eq!(kernel, "racy");
            assert!(index < 8);
        }
        other => panic!("expected WriteRace, got {other}"),
    }
}

#[test]
fn race_free_kernel_passes_validation() {
    let ctx = vctx();
    let mut q = ctx.queue();
    let out = ctx.buffer::<f32>("out", 32);
    let w = out.write_view();
    let desc = KernelDesc::new("clean", [32, 1], [8, 1]);
    q.run(&desc, &[&out], |g| {
        for l in items(g.group_size) {
            let i = g.global_id(l)[0];
            g.store(&w, i, i as f32);
        }
    })
    .unwrap();
    assert_eq!(out.snapshot()[31], 31.0);
}

#[test]
fn pipeline_kernels_are_race_free_under_validation() {
    // The whole point of the border/center/body split is exactly-once
    // writes; run every config under validation to prove it.
    let img = imagekit::generate::natural(64, 64, 5);
    for opts in [OptConfig::none(), OptConfig::all()] {
        GpuPipeline::new(vctx(), SharpnessParams::default(), opts)
            .run(&img)
            .expect("race-free pipeline");
    }
}

#[test]
fn bad_ndrange_reports_geometry() {
    let ctx = vctx();
    let mut q = ctx.queue();
    let desc = KernelDesc::new("bad", [100, 100], [16, 16]);
    let err = q.run(&desc, &[], |_| {}).unwrap_err();
    assert!(matches!(err, Error::InvalidNdRange { .. }));
    let desc = KernelDesc::new("bad", [64, 64], [0, 16]);
    assert!(matches!(
        q.run(&desc, &[], |_| {}),
        Err(Error::EmptyGroup { .. })
    ));
}

#[test]
fn transfer_bounds_are_enforced() {
    let ctx = vctx();
    let mut q = ctx.queue();
    let buf = ctx.buffer::<f32>("b", 16);
    assert!(matches!(
        q.enqueue_write(&buf, &[0.0; 17]),
        Err(Error::TransferOutOfBounds { .. })
    ));
    let mut big = vec![0.0f32; 17];
    assert!(q.enqueue_read(&buf, &mut big).is_err());
    // Rect region falling off the right edge.
    assert!(q
        .enqueue_write_rect(&buf, 4, 3, 0, &[1.0; 8], 4, 2)
        .is_err());
    // Rect shape inconsistent with host slice.
    assert!(matches!(
        q.enqueue_write_rect(&buf, 4, 0, 0, &[1.0; 7], 4, 2),
        Err(Error::RectShapeMismatch { .. })
    ));
}

#[test]
fn double_map_is_rejected() {
    let ctx = vctx();
    let mut q1 = ctx.queue();
    let mut q2 = ctx.queue();
    let buf = ctx.buffer::<f32>("m", 8);
    let _guard = q1.map_write(&buf).unwrap();
    assert!(matches!(q2.map_read(&buf), Err(Error::AlreadyMapped)));
}

#[test]
fn pipelines_reject_unsupported_shapes() {
    for (w, h) in [(2, 8), (8, 2), (1, 1), (0, 0)] {
        let img = imagekit::ImageF32::zeros(w, h);
        assert!(
            CpuPipeline::new(SharpnessParams::default())
                .run(&img)
                .is_err(),
            "cpu accepted {w}x{h}"
        );
        assert!(
            GpuPipeline::new(vctx(), SharpnessParams::default(), OptConfig::all())
                .run(&img)
                .is_err(),
            "gpu accepted {w}x{h}"
        );
    }
}

#[test]
fn pipelines_reject_invalid_params() {
    let img = imagekit::generate::natural(32, 32, 1);
    let bad = [
        SharpnessParams {
            gain: f32::NAN,
            ..SharpnessParams::default()
        },
        SharpnessParams {
            gamma: 0.0,
            ..SharpnessParams::default()
        },
        SharpnessParams {
            osc: 2.0,
            ..SharpnessParams::default()
        },
        SharpnessParams {
            eps: -1.0,
            ..SharpnessParams::default()
        },
    ];
    for p in bad {
        assert!(CpuPipeline::new(p).run(&img).is_err());
        assert!(GpuPipeline::new(vctx(), p, OptConfig::none())
            .run(&img)
            .is_err());
    }
}
