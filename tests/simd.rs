//! Backend-equivalence tests for the host-SIMD kernel spans.
//!
//! The contract (DESIGN.md §14): the `autovec`, `sse2`, and `avx2` span
//! backends produce bit-identical pixels and `.to_bits()`-identical
//! simulated seconds for every optimization config and ragged shape, and
//! the sanitizer sweeps clean under every backend. Simulated time is
//! commit-order accounting that never observes the host execution
//! strategy, so any drift here is a real bug in a backend, not noise.
//!
//! Backends are process-global (`simd::set_backend`), so every test that
//! flips them holds [`backend_lock`] for its whole body.

use std::sync::{Mutex, MutexGuard, OnceLock};

use imagekit::{generate, ImageF32};
use sharpness_core::cpu::CpuPipeline;
use sharpness_core::gpu::{GpuPipeline, OptConfig};
use sharpness_core::params::SharpnessParams;
use sharpness_core::simd::{self, Backend};
use simgpu::context::Context;
use simgpu::device::DeviceSpec;

fn spec() -> DeviceSpec {
    DeviceSpec::firepro_w8000()
}

/// Serializes tests that force the process-global backend; restores
/// runtime detection when the guard is held (tests set what they need).
fn backend_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    simd::set_backend(None);
    guard
}

/// All 64 combinations of the six optimization flags.
fn all_configs() -> Vec<OptConfig> {
    (0..64u32)
        .map(|bits| OptConfig {
            data_transfer: bits & 1 != 0,
            kernel_fusion: bits & 2 != 0,
            reduction_gpu: bits & 4 != 0,
            vectorization: bits & 8 != 0,
            border_gpu: bits & 16 != 0,
            others: bits & 32 != 0,
        })
        .collect()
}

/// Every backend worth comparing on this build. Forcing a tier the
/// build/host cannot honour silently degrades (by design), so each entry
/// is what `active_backend` actually resolves it to — deduplicated.
fn backends() -> Vec<Backend> {
    let mut out: Vec<Backend> = Vec::new();
    for b in [Backend::Autovec, Backend::Sse2, Backend::Avx2] {
        simd::set_backend(Some(b));
        let eff = simd::active_backend();
        if !out.contains(&eff) {
            out.push(eff);
        }
    }
    simd::set_backend(None);
    out
}

/// Runs the GPU pipeline with `backend` forced, returning the pixel bits
/// and the simulated-seconds bits (plus sanitizer cleanliness when asked).
fn run_gpu(img: &ImageF32, cfg: OptConfig, backend: Backend, sanitize: bool) -> (Vec<u32>, u64) {
    simd::set_backend(Some(backend));
    let ctx = if sanitize {
        Context::sanitized(spec())
    } else {
        Context::new(spec())
    };
    let report = GpuPipeline::new(ctx.clone(), SharpnessParams::default(), cfg)
        .run(img)
        .expect("pipeline run failed");
    if sanitize {
        let san = ctx.sanitize_report().expect("sanitizer was enabled");
        assert!(
            san.is_clean(),
            "backend {}: {}",
            backend.label(),
            san.summary()
        );
    }
    simd::set_backend(None);
    let bits = report.output.pixels().iter().map(|p| p.to_bits()).collect();
    (bits, report.total_s.to_bits())
}

/// Asserts all backends agree bit-for-bit on `img` under `cfg`.
fn assert_backends_agree(img: &ImageF32, cfg: OptConfig, bits_label: usize, sanitize: bool) {
    let bs = backends();
    let (ref_px, ref_s) = run_gpu(img, cfg, bs[0], sanitize);
    for &b in &bs[1..] {
        let (px, s) = run_gpu(img, cfg, b, sanitize);
        assert_eq!(
            px,
            ref_px,
            "pixels differ: {} vs {}, config bits {bits_label}, {}x{}",
            b.label(),
            bs[0].label(),
            img.width(),
            img.height()
        );
        assert_eq!(
            s,
            ref_s,
            "simulated seconds differ: {} vs {}, config bits {bits_label}",
            b.label(),
            bs[0].label()
        );
    }
}

#[test]
fn all_64_configs_bit_identical_across_backends_small() {
    let _g = backend_lock();
    let img = generate::natural(96, 64, 19);
    for (bits, cfg) in all_configs().into_iter().enumerate() {
        assert_backends_agree(&img, cfg, bits, false);
    }
}

#[test]
fn ragged_shapes_bit_identical_across_backends() {
    let _g = backend_lock();
    // Shapes chosen to hit every tail: odd widths, non-multiples of the
    // 16-wide group, sub-group images, and a width below the span cutoff.
    for (w, h) in [(97, 61), (33, 29), (17, 23), (5, 7), (3, 3), (66, 18)] {
        let img = generate::natural(w, h, 43);
        for (bits, cfg) in [OptConfig::none(), OptConfig::all()]
            .into_iter()
            .enumerate()
        {
            assert_backends_agree(&img, cfg, bits, false);
        }
    }
}

#[test]
fn cpu_reference_bit_identical_across_backends() {
    let _g = backend_lock();
    let img = generate::natural(97, 61, 7);
    let run = |b: Backend| {
        simd::set_backend(Some(b));
        let rep = CpuPipeline::new(SharpnessParams::default())
            .run(&img)
            .unwrap();
        simd::set_backend(None);
        (
            rep.output
                .pixels()
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<u32>>(),
            rep.total_s.to_bits(),
        )
    };
    let bs = backends();
    let (ref_px, ref_s) = run(bs[0]);
    for &b in &bs[1..] {
        assert_eq!(run(b), (ref_px.clone(), ref_s), "backend {}", b.label());
    }
}

#[test]
fn forced_and_env_overrides_resolve_to_supported_backends() {
    let _g = backend_lock();
    // Forcing any tier always resolves to something the build supports,
    // and the default build resolves SIMD tiers to autovec.
    for b in [Backend::Autovec, Backend::Sse2, Backend::Avx2] {
        simd::set_backend(Some(b));
        let eff = simd::active_backend();
        if !simd::simd_compiled() {
            assert_eq!(eff, Backend::Autovec);
        }
        assert!(
            simd::simd_compiled() || eff == Backend::Autovec,
            "unsupported backend {} leaked through",
            eff.label()
        );
    }
    simd::set_backend(None);
    // Host feature reporting never panics and always includes the x86-64
    // baseline on x86-64 hosts.
    let feats = simd::host_features();
    if cfg!(target_arch = "x86_64") {
        assert!(feats.contains("sse2"), "{feats}");
    }
}

#[test]
fn sanitizer_clean_under_every_backend() {
    let _g = backend_lock();
    let img = generate::natural(64, 64, 11);
    for cfg in [OptConfig::none(), OptConfig::all()] {
        for b in backends() {
            let _ = run_gpu(&img, cfg, b, true);
        }
    }
}

/// The full acceptance sweep: all 64 configs, sanitized, at 256² and the
/// ragged 1001×701, every backend. Heavy — run explicitly with
/// `cargo test -q --features simd --test simd -- --ignored` or
/// `scripts/ci.sh --full`.
#[test]
#[ignore = "full sweep is expensive; run via ci.sh --full"]
fn full_sweep_all_configs_sanitized_across_backends() {
    let _g = backend_lock();
    for (w, h) in [(256, 256), (1001, 701)] {
        let img = generate::natural(w, h, 31);
        for (bits, cfg) in all_configs().into_iter().enumerate() {
            assert_backends_agree(&img, cfg, bits, true);
        }
    }
}
