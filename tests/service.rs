//! Integration tests for the sharpen service (`core::service`):
//! determinism of the whole serve (stream, batching, shed set, outputs),
//! bit-identity of served frames against direct plan execution, exact
//! request accounting, backpressure under overload, and sanitizer
//! cleanliness of a served stream.

use sharpness_core::gpu::{GpuPipeline, OptConfig};
use sharpness_core::params::SharpnessParams;
use sharpness_core::service::{
    generate_requests, ServiceConfig, ServiceReport, SharpenService, TrafficConfig,
};
use simgpu::prelude::*;

fn pipeline(ctx: Context) -> GpuPipeline {
    GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all())
}

fn traffic(n: usize, seed: u64, gap_s: f64) -> TrafficConfig {
    TrafficConfig {
        requests: n,
        seed,
        mean_gap_s: gap_s,
        ..TrafficConfig::default()
    }
}

fn serve(ctx: Context, cfg: &TrafficConfig, keep_outputs: bool) -> ServiceReport {
    let requests = generate_requests(cfg);
    SharpenService::new(
        pipeline(ctx),
        ServiceConfig {
            keep_outputs,
            ..ServiceConfig::default()
        },
    )
    .serve(&requests)
    .expect("serve")
}

// ---- determinism -------------------------------------------------------

#[test]
fn identical_seed_gives_identical_serve_decisions_and_outputs() {
    let cfg = traffic(96, 41, 2e-4); // hot enough that shedding can occur
    let a = serve(Context::new(DeviceSpec::firepro_w8000()), &cfg, true);
    let b = serve(Context::new(DeviceSpec::firepro_w8000()), &cfg, true);

    // Scheduler decisions replay exactly: same shed set, same batch
    // composition, same outcome counters.
    assert_eq!(a.shed_ids, b.shed_ids);
    assert_eq!(a.served, b.served);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.coalesced, b.coalesced);
    assert_eq!(a.peak_queued, b.peak_queued);
    // Simulated time is bit-identical (the repo-wide invariant).
    assert_eq!(a.sim_end_s.to_bits(), b.sim_end_s.to_bits());
    // Served outputs: same ids in the same completion order, and the
    // pixels are bit-identical.
    assert_eq!(a.outputs.len(), b.outputs.len());
    for ((ida, imga), (idb, imgb)) in a.outputs.iter().zip(&b.outputs) {
        assert_eq!(ida, idb);
        assert_eq!(imga.pixels(), imgb.pixels());
    }
}

#[test]
fn different_seed_changes_the_stream() {
    let a = generate_requests(&traffic(64, 1, 2e-3));
    let b = generate_requests(&traffic(64, 2, 2e-3));
    assert_ne!(a, b);
}

// ---- bit-identity vs direct execution ----------------------------------

#[test]
fn served_outputs_are_bit_identical_to_direct_plan_execution() {
    let cfg = traffic(48, 7, 1e-3);
    let report = serve(Context::new(DeviceSpec::firepro_w8000()), &cfg, true);
    assert!(report.served > 0);

    let requests = generate_requests(&cfg);
    let direct = pipeline(Context::new(DeviceSpec::firepro_w8000()));
    for (id, out) in &report.outputs {
        let r = &requests[*id as usize];
        assert_eq!(r.id, *id);
        let frame = r.frame();
        let mut expect = vec![0.0f32; frame.len()];
        let mut plan = direct.prepared(r.width, r.height).expect("prepare");
        plan.run_into(&frame, &mut expect).expect("direct run");
        assert_eq!(
            out.pixels(),
            expect.as_slice(),
            "request {id}: served pixels differ from direct execution"
        );
    }
}

// ---- accounting --------------------------------------------------------

#[test]
fn every_request_is_served_or_shed_exactly_once() {
    let cfg = traffic(128, 13, 1e-4); // saturating: forces sheds
    let report = serve(Context::new(DeviceSpec::firepro_w8000()), &cfg, true);
    assert_eq!(report.served + report.shed, report.requests);
    assert_eq!(report.shed_ids.len() as u64, report.shed);
    assert_eq!(report.outputs.len() as u64, report.served);

    // Served ∪ shed covers the id space with no overlap.
    let mut seen = vec![false; report.requests as usize];
    for id in report
        .shed_ids
        .iter()
        .chain(report.outputs.iter().map(|(id, _)| id))
    {
        assert!(!seen[*id as usize], "request {id} appears twice");
        seen[*id as usize] = true;
    }
    assert!(seen.iter().all(|&s| s));

    // Per-class counters roll up to the same totals.
    for c in &report.classes {
        assert_eq!(c.offered, c.admitted + c.shed);
        assert_eq!(c.admitted, c.served); // the loop drains every queue
    }
}

// ---- backpressure ------------------------------------------------------

#[test]
fn overload_sheds_and_relaxed_load_does_not() {
    // Saturating: the whole stream lands within ~1 ms of simulated time
    // while each frame costs a comparable amount, so bounded queues must
    // overflow (small capacity keeps the threshold far from the stream
    // size — this is a backpressure test, not a tuning test).
    let requests = generate_requests(&traffic(128, 13, 1e-5));
    let hot = SharpenService::new(
        pipeline(Context::new(DeviceSpec::firepro_w8000())),
        ServiceConfig {
            queue_capacity: 8,
            ..ServiceConfig::default()
        },
    )
    .serve(&requests)
    .expect("serve");
    assert!(hot.shed > 0, "saturating load must shed");
    assert_eq!(hot.served + hot.shed, hot.requests);

    let cold = serve(
        Context::new(DeviceSpec::firepro_w8000()),
        &traffic(32, 13, 0.5),
        false,
    );
    assert_eq!(cold.shed, 0, "widely spaced arrivals must all be admitted");
    assert_eq!(cold.served, 32);
}

#[test]
fn batches_respect_max_batch_and_coalescing_is_counted() {
    let cfg = traffic(96, 99, 1e-5); // everything arrives almost at once
    let requests = generate_requests(&cfg);
    let report = SharpenService::new(
        pipeline(Context::new(DeviceSpec::firepro_w8000())),
        ServiceConfig {
            max_batch: 4,
            queue_capacity: 256,
            slo_s: [10.0, 10.0, 10.0], // admit everything: isolate batching
            ..ServiceConfig::default()
        },
    )
    .serve(&requests)
    .expect("serve");
    assert_eq!(report.served, 96);
    // With max_batch=4 a batch serves at most 4 requests, so at least
    // ceil(96/4) batches ran; coalesced counts the riders exactly.
    assert!(report.batches >= 24);
    assert_eq!(report.coalesced, report.served - report.batches);
    assert!(
        report.coalesced > 0,
        "a burst-heavy same-catalog stream must coalesce"
    );
}

// ---- sanitizer ---------------------------------------------------------

#[test]
fn serving_a_stream_is_sanitize_clean_and_unperturbed() {
    let cfg = traffic(24, 5, 1e-3);
    let ctx = Context::sanitized(DeviceSpec::firepro_w8000());
    let report = serve(ctx.clone(), &cfg, true);
    let san = ctx.sanitize_report().expect("sanitizer was enabled");
    assert!(san.is_clean(), "{}", san.summary());
    assert!(san.dispatches > 0);

    // The sanitizer observes without perturbing: identical decisions,
    // identical pixels, bit-identical simulated time vs a plain context.
    let plain = serve(Context::new(DeviceSpec::firepro_w8000()), &cfg, true);
    assert_eq!(report.shed_ids, plain.shed_ids);
    assert_eq!(report.sim_end_s.to_bits(), plain.sim_end_s.to_bits());
    assert_eq!(report.outputs.len(), plain.outputs.len());
    for ((ida, imga), (idb, imgb)) in report.outputs.iter().zip(&plain.outputs) {
        assert_eq!(ida, idb);
        assert_eq!(imga.pixels(), imgb.pixels());
    }
}
