//! Property-based tests (proptest) over the pipeline's core invariants.

use imagekit::ImageF32;
use proptest::prelude::*;
use sharpness::core::cpu::stages;
use sharpness::core::gpu::kernels::reduction::{
    reduction_stage1_kernel, reduction_stage2_kernel, stage1_groups, ReductionStrategy,
};
use sharpness::core::math;
use sharpness::prelude::*;
use sharpness::simgpu::cost::CostCounters;
use sharpness::simgpu::timing::{bulk_transfer_time, kernel_time};

/// Strategy: a pipeline-shaped image (dims multiple of 4, 16..=48) with
/// arbitrary pixel values in the display range.
fn arb_image() -> impl Strategy<Value = ImageF32> {
    (4usize..=12, 4usize..=12).prop_flat_map(|(w4, h4)| {
        let (w, h) = (4 * w4, 4 * h4);
        proptest::collection::vec(0.0f32..=255.0, w * h)
            .prop_map(move |data| ImageF32::from_vec(w, h, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn final_output_always_in_display_range(img in arb_image()) {
        let r = CpuPipeline::new(SharpnessParams::default()).run(&img).unwrap();
        prop_assert_eq!(imagekit::metrics::out_of_range_fraction(&r.output), 0.0);
    }

    #[test]
    fn downscale_means_within_block_bounds(img in arb_image()) {
        let (d, _) = stages::downscale(&img);
        let lo = img.pixels().iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = img.pixels().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for &v in d.pixels() {
            prop_assert!(v >= lo - 1e-3 && v <= hi + 1e-3);
        }
    }

    #[test]
    fn upscale_within_downscaled_hull(img in arb_image()) {
        let (d, _) = stages::downscale(&img);
        let (up, _, _) = stages::upscale(&d, img.width(), img.height());
        let lo = d.pixels().iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = d.pixels().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for &v in up.pixels() {
            prop_assert!(v >= lo - 1e-3 && v <= hi + 1e-3);
        }
    }

    #[test]
    fn sobel_nonnegative_and_zero_border(img in arb_image()) {
        let (s, _) = stages::sobel(&img);
        let (w, h) = (s.width(), s.height());
        for y in 0..h {
            for x in 0..w {
                let v = s.get(x, y);
                prop_assert!(v >= 0.0);
                if x == 0 || y == 0 || x == w - 1 || y == h - 1 {
                    prop_assert_eq!(v, 0.0);
                }
            }
        }
    }

    #[test]
    fn sobel_invariant_under_constant_offset(img in arb_image(), off in 0.0f32..40.0) {
        let (s1, _) = stages::sobel(&img);
        let shifted = ImageF32::from_vec(
            img.width(), img.height(),
            img.pixels().iter().map(|&v| v + off).collect(),
        );
        let (s2, _) = stages::sobel(&shifted);
        // Gradients of (img + c) equal gradients of img up to f32 error.
        for i in 0..s1.len() {
            prop_assert!((s1.pixels()[i] - s2.pixels()[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn gpu_tree_reduction_matches_serial_sum(
        data in proptest::collection::vec(0.0f32..255.0, 1..5000),
        strategy in prop_oneof![
            Just(ReductionStrategy::NoUnroll),
            Just(ReductionStrategy::UnrollOne),
            Just(ReductionStrategy::UnrollTwo),
        ],
    ) {
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let src = ctx.buffer_from("pEdge", &data);
        let partials = ctx.buffer::<f32>("partials", stage1_groups(data.len()));
        let (groups, _) =
            reduction_stage1_kernel(&mut q, &src.view(), data.len(), &partials, strategy).unwrap();
        let result = ctx.buffer::<f32>("reduction_out", 1);
        reduction_stage2_kernel(&mut q, &partials.view(), groups, &result).unwrap();
        let got = f64::from(result.snapshot()[0]);
        let want: f64 = data.iter().map(|&v| f64::from(v)).sum();
        let tol = (want.abs() + 1.0) * 1e-5;
        prop_assert!((got - want).abs() <= tol, "got {got}, want {want}");
    }

    #[test]
    fn overshoot_never_exceeds_envelope_by_more_than_osc_fraction(
        prelim in -200.0f32..500.0,
        mn in 0.0f32..100.0,
        span in 0.0f32..150.0,
        osc in 0.0f32..=1.0,
    ) {
        let mx = mn + span;
        let p = SharpnessParams { osc, ..SharpnessParams::default() };
        let v = math::overshoot(prelim, mn, mx, &p);
        prop_assert!((0.0..=255.0).contains(&v));
        // Overshoot past the envelope is at most osc times the excursion.
        if prelim > mx {
            prop_assert!(v <= (mx + osc * (prelim - mx)).min(255.0) + 1e-4);
            prop_assert!(v + 1e-4 >= mx.min(255.0));
        } else if prelim < mn {
            prop_assert!(v + 1e-4 >= (mn - osc * (mn - prelim)).max(0.0) - 1e-4);
        }
    }

    #[test]
    fn strength_is_monotone_in_edge(e1 in 0.0f32..1000.0, e2 in 0.0f32..1000.0, mean in 0.0f32..500.0) {
        let p = SharpnessParams::default();
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        prop_assert!(math::strength(lo, mean, &p) <= math::strength(hi, mean, &p) + 1e-6);
    }

    #[test]
    fn kernel_time_monotone_in_work(
        base_bytes in 1u64..1_000_000,
        extra in 0u64..1_000_000,
        groups in 1u64..10_000,
    ) {
        let dev = DeviceSpec::firepro_w8000();
        let mut a = CostCounters::new();
        a.global_read_scalar = base_bytes;
        a.groups = groups;
        a.group_lanes = 256;
        let mut b = a;
        b.global_read_scalar += extra;
        prop_assert!(kernel_time(&dev, &b).total_s >= kernel_time(&dev, &a).total_s);
    }

    #[test]
    fn transfer_time_monotone_and_superlatency(bytes in 0u64..100_000_000) {
        let t = DeviceSpec::firepro_w8000().transfer;
        let cost = bulk_transfer_time(&t, bytes);
        prop_assert!(cost >= t.bulk_latency_s);
        prop_assert!(bulk_transfer_time(&t, bytes + 4096) >= cost);
    }

    #[test]
    fn padding_roundtrip(img in arb_image(), replicate in any::<bool>()) {
        let padded = img.padded(2, replicate);
        prop_assert_eq!(padded.cropped(2), img);
    }
}
