//! Property-style tests over the pipeline's core invariants.
//!
//! Formerly proptest-based; now driven by a seeded in-tree PRNG
//! (deterministic case sweeps) so the suite builds fully offline. Each
//! test keeps the original invariant and exercises it over a spread of
//! randomised shapes/values.

use imagekit::rng::SplitMix64;
use imagekit::ImageF32;
use sharpness::core::cpu::stages;
use sharpness::core::gpu::kernels::reduction::{
    reduction_stage1_kernel, reduction_stage2_kernel, stage1_groups, ReductionStrategy,
};
use sharpness::core::math;
use sharpness::prelude::*;
use sharpness::simgpu::cost::CostCounters;
use sharpness::simgpu::timing::{bulk_transfer_time, kernel_time};

/// A pipeline-shaped image (dims multiple of 4, 16..=48) with pixel values
/// in the display range, derived from `rng`.
fn rand_image(rng: &mut SplitMix64) -> ImageF32 {
    let w = 4 * (4 + (rng.next_u64() % 9) as usize);
    let h = 4 * (4 + (rng.next_u64() % 9) as usize);
    let data: Vec<f32> = (0..w * h).map(|_| rng.gen_range(0.0, 255.0)).collect();
    ImageF32::from_vec(w, h, data)
}

const CASES: u64 = 24;

#[test]
fn final_output_always_in_display_range() {
    for seed in 0..CASES {
        let img = rand_image(&mut SplitMix64::seed_from_u64(seed));
        let r = CpuPipeline::new(SharpnessParams::default())
            .run(&img)
            .unwrap();
        assert_eq!(
            imagekit::metrics::out_of_range_fraction(&r.output),
            0.0,
            "seed {seed}"
        );
    }
}

#[test]
fn downscale_means_within_block_bounds() {
    for seed in 0..CASES {
        let img = rand_image(&mut SplitMix64::seed_from_u64(seed));
        let (d, _) = stages::downscale(&img);
        let lo = img.pixels().iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = img
            .pixels()
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        for &v in d.pixels() {
            assert!(v >= lo - 1e-3 && v <= hi + 1e-3, "seed {seed}");
        }
    }
}

#[test]
fn upscale_within_downscaled_hull() {
    for seed in 0..CASES {
        let img = rand_image(&mut SplitMix64::seed_from_u64(seed));
        let (d, _) = stages::downscale(&img);
        let (up, _, _) = stages::upscale(&d, img.width(), img.height());
        let lo = d.pixels().iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = d.pixels().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for &v in up.pixels() {
            assert!(v >= lo - 1e-3 && v <= hi + 1e-3, "seed {seed}");
        }
    }
}

#[test]
fn sobel_nonnegative_and_zero_border() {
    for seed in 0..CASES {
        let img = rand_image(&mut SplitMix64::seed_from_u64(seed));
        let (s, _) = stages::sobel(&img);
        let (w, h) = (s.width(), s.height());
        for y in 0..h {
            for x in 0..w {
                let v = s.get(x, y);
                assert!(v >= 0.0, "seed {seed}");
                if x == 0 || y == 0 || x == w - 1 || y == h - 1 {
                    assert_eq!(v, 0.0, "seed {seed}");
                }
            }
        }
    }
}

#[test]
fn sobel_invariant_under_constant_offset() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let img = rand_image(&mut rng);
        let off = rng.gen_range(0.0, 40.0);
        let (s1, _) = stages::sobel(&img);
        let shifted = ImageF32::from_vec(
            img.width(),
            img.height(),
            img.pixels().iter().map(|&v| v + off).collect(),
        );
        let (s2, _) = stages::sobel(&shifted);
        // Gradients of (img + c) equal gradients of img up to f32 error.
        for i in 0..s1.len() {
            assert!(
                (s1.pixels()[i] - s2.pixels()[i]).abs() < 1e-2,
                "seed {seed}"
            );
        }
    }
}

#[test]
fn gpu_tree_reduction_matches_serial_sum() {
    let strategies = [
        ReductionStrategy::NoUnroll,
        ReductionStrategy::UnrollOne,
        ReductionStrategy::UnrollTwo,
    ];
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let len = 1 + (rng.next_u64() % 4999) as usize;
        let data: Vec<f32> = (0..len).map(|_| rng.gen_range(0.0, 255.0)).collect();
        let strategy = strategies[(rng.next_u64() % 3) as usize];
        let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
        let mut q = ctx.queue();
        let src = ctx.buffer_from("pEdge", &data);
        let partials = ctx.buffer::<f32>("partials", stage1_groups(data.len()));
        let (groups, _) =
            reduction_stage1_kernel(&mut q, &src.view(), data.len(), &partials, strategy).unwrap();
        let result = ctx.buffer::<f32>("reduction_out", 1);
        reduction_stage2_kernel(&mut q, &partials.view(), groups, &result).unwrap();
        let got = f64::from(result.snapshot()[0]);
        let want: f64 = data.iter().map(|&v| f64::from(v)).sum();
        let tol = (want.abs() + 1.0) * 1e-5;
        assert!(
            (got - want).abs() <= tol,
            "seed {seed}: got {got}, want {want}"
        );
    }
}

#[test]
fn overshoot_never_exceeds_envelope_by_more_than_osc_fraction() {
    for seed in 0..200 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let prelim = rng.gen_range(-200.0, 500.0);
        let mn = rng.gen_range(0.0, 100.0);
        let span = rng.gen_range(0.0, 150.0);
        let osc = rng.gen_range(0.0, 1.0);
        let mx = mn + span;
        let p = SharpnessParams {
            osc,
            ..SharpnessParams::default()
        };
        let v = math::overshoot(prelim, mn, mx, &p);
        assert!((0.0..=255.0).contains(&v), "seed {seed}");
        // Overshoot past the envelope is at most osc times the excursion.
        if prelim > mx {
            assert!(
                v <= (mx + osc * (prelim - mx)).min(255.0) + 1e-4,
                "seed {seed}"
            );
            assert!(v + 1e-4 >= mx.min(255.0), "seed {seed}");
        } else if prelim < mn {
            assert!(
                v + 1e-4 >= (mn - osc * (mn - prelim)).max(0.0) - 1e-4,
                "seed {seed}"
            );
        }
    }
}

#[test]
fn strength_is_monotone_in_edge() {
    for seed in 0..200 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let e1 = rng.gen_range(0.0, 1000.0);
        let e2 = rng.gen_range(0.0, 1000.0);
        let mean = rng.gen_range(0.0, 500.0);
        let p = SharpnessParams::default();
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        assert!(
            math::strength(lo, mean, &p) <= math::strength(hi, mean, &p) + 1e-6,
            "seed {seed}"
        );
    }
}

#[test]
fn kernel_time_monotone_in_work() {
    let dev = DeviceSpec::firepro_w8000();
    for seed in 0..200 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let base_bytes = 1 + rng.next_u64() % 999_999;
        let extra = rng.next_u64() % 1_000_000;
        let groups = 1 + rng.next_u64() % 9_999;
        let mut a = CostCounters::new();
        a.global_read_scalar = base_bytes;
        a.groups = groups;
        a.group_lanes = 256;
        let mut b = a;
        b.global_read_scalar += extra;
        assert!(
            kernel_time(&dev, &b).total_s >= kernel_time(&dev, &a).total_s,
            "seed {seed}"
        );
    }
}

#[test]
fn transfer_time_monotone_and_superlatency() {
    let t = DeviceSpec::firepro_w8000().transfer;
    for seed in 0..200 {
        let bytes = SplitMix64::seed_from_u64(seed).next_u64() % 100_000_000;
        let cost = bulk_transfer_time(&t, bytes);
        assert!(cost >= t.bulk_latency_s, "seed {seed}");
        assert!(bulk_transfer_time(&t, bytes + 4096) >= cost, "seed {seed}");
    }
}

#[test]
fn padding_roundtrip() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let img = rand_image(&mut rng);
        let replicate = rng.next_u64().is_multiple_of(2);
        let padded = img.padded(2, replicate);
        assert_eq!(padded.cropped(2), img, "seed {seed}");
    }
}
