//! Sanitizer integration tests: the production kernels must sweep clean
//! under the shadow-execution sanitizer for every optimization config, the
//! sanitizer must not perturb results or simulated time, and
//! deliberately-broken fixture kernels must be flagged — one per
//! violation class.

use imagekit::generate;
use sharpness_core::gpu::{GpuPipeline, OptConfig};
use sharpness_core::params::SharpnessParams;
use simgpu::prelude::*;

fn spec() -> DeviceSpec {
    DeviceSpec::firepro_w8000()
}

/// All 64 combinations of the six optimization flags.
fn all_configs() -> Vec<OptConfig> {
    (0..64u32)
        .map(|bits| OptConfig {
            data_transfer: bits & 1 != 0,
            kernel_fusion: bits & 2 != 0,
            reduction_gpu: bits & 4 != 0,
            vectorization: bits & 8 != 0,
            border_gpu: bits & 16 != 0,
            others: bits & 32 != 0,
        })
        .collect()
}

/// Runs the pipeline for `cfg` under a sanitized context and returns the
/// report (the run itself must succeed).
fn sanitized_sweep(w: usize, h: usize, seed: u64, cfg: OptConfig) -> SanitizeReport {
    let img = generate::natural(w, h, seed);
    let ctx = Context::sanitized(spec());
    let pipe = GpuPipeline::new(ctx.clone(), SharpnessParams::default(), cfg);
    pipe.run(&img).expect("sanitized run failed");
    ctx.sanitize_report().expect("sanitizer was enabled")
}

// ---- production kernels sweep clean -----------------------------------

#[test]
fn every_opt_combination_is_sanitize_clean_at_64x64() {
    for (bits, cfg) in all_configs().into_iter().enumerate() {
        let report = sanitized_sweep(64, 64, 11, cfg);
        assert!(
            report.is_clean(),
            "config bits {bits}: {}",
            report.summary()
        );
        assert!(report.dispatches > 0);
    }
}

#[test]
fn representative_configs_are_clean_at_larger_and_ragged_sizes() {
    // 256x256 (power of two), and 1000x700: divisible by the 4x4 scale
    // block but the 250x175 downscaled image is not a multiple of the
    // 16x16 group, exercising every tail path.
    for cfg in [OptConfig::none(), OptConfig::all()] {
        for (w, h) in [(256, 256), (1000, 700)] {
            let report = sanitized_sweep(w, h, 23, cfg);
            assert!(report.is_clean(), "{w}x{h} {cfg:?}: {}", report.summary());
        }
    }
}

/// The full acceptance sweep: all 64 configs at every required size.
/// Heavy (hours of shadow bookkeeping on one core) — run explicitly with
/// `cargo test -q --test sanitize -- --ignored` or `scripts/ci.sh --full`.
#[test]
#[ignore = "full sweep is expensive; run via ci.sh --full"]
fn full_sweep_all_configs_all_sizes() {
    for (w, h) in [(256, 256), (768, 768), (1024, 1024), (1000, 700)] {
        for (bits, cfg) in all_configs().into_iter().enumerate() {
            let report = sanitized_sweep(w, h, 31, cfg);
            assert!(
                report.is_clean(),
                "{w}x{h} config bits {bits}: {}",
                report.summary()
            );
        }
    }
}

// ---- the sanitizer is observation-only --------------------------------

#[test]
fn sanitized_runs_are_bit_and_time_identical_to_unsanitized() {
    let img = generate::natural(64, 64, 7);
    for (bits, cfg) in all_configs().into_iter().enumerate() {
        let plain = GpuPipeline::new(Context::new(spec()), SharpnessParams::default(), cfg)
            .run(&img)
            .unwrap();
        let sctx = Context::sanitized(spec());
        let sanitized = GpuPipeline::new(sctx.clone(), SharpnessParams::default(), cfg)
            .run(&img)
            .unwrap();
        assert_eq!(
            plain.output.pixels(),
            sanitized.output.pixels(),
            "pixels differ under sanitize, config bits {bits}"
        );
        assert_eq!(
            plain.total_s, sanitized.total_s,
            "simulated seconds differ under sanitize, config bits {bits}"
        );
        assert!(sctx.sanitize_report().unwrap().is_clean());
    }
}

// ---- fixture kernels: every violation class is caught ------------------

fn fixture_ctx() -> Context {
    Context::sanitized(spec())
}

#[test]
fn fixture_global_write_write_race_is_flagged() {
    let ctx = fixture_ctx();
    let mut q = ctx.queue();
    let out = ctx.buffer::<f32>("out", 64);
    let w = out.write_view();
    q.run(&KernelDesc::new_1d("ww_race", 64, 64), &[&out], move |g| {
        for l in items(g.group_size) {
            g.begin_item(l);
            // Every item stores to element 0: 63 write/write conflicts.
            g.store(&w, 0, l[0] as f32);
        }
    })
    .unwrap();
    let report = ctx.sanitize_report().unwrap();
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::GlobalRace {
            kind: RaceKind::WriteWrite,
            index: 0,
            ..
        }
    )));
}

#[test]
fn fixture_global_read_write_race_is_flagged() {
    let ctx = fixture_ctx();
    let mut q = ctx.queue();
    let buf = ctx.buffer::<f32>("rw", 64);
    let (r, w) = (buf.view(), buf.write_view());
    q.run(&KernelDesc::new_1d("rw_race", 64, 64), &[&buf], move |g| {
        for l in items(g.group_size) {
            g.begin_item(l);
            if l[0] == 0 {
                // Item 0 reads what item 5 writes, with no ordering
                // between global accesses of different items.
                let _ = g.load(&r, 5);
            } else if l[0] == 5 {
                g.store(&w, 5, 1.0);
            }
        }
    })
    .unwrap();
    let report = ctx.sanitize_report().unwrap();
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::GlobalRace {
            kind: RaceKind::ReadWrite,
            index: 5,
            ..
        }
    )));
}

#[test]
fn fixture_local_race_across_wavefronts_is_flagged() {
    let ctx = fixture_ctx();
    let mut q = ctx.queue();
    let out = ctx.buffer::<f32>("out", 1);
    let w = out.write_view();
    // Lane 0 (wavefront 0) writes local[0]; lane 64 (wavefront 1) reads it
    // in the same barrier phase — not lockstep, so it is a real race.
    q.run(
        &KernelDesc::new_1d("local_race", 128, 128),
        &[&out],
        move |g| {
            g.alloc_local(128);
            g.begin_item([0, 0]);
            g.local_write(0, 3.0);
            g.begin_item([64, 0]);
            let v = g.local_read(0);
            g.store(&w, 0, v);
        },
    )
    .unwrap();
    let report = ctx.sanitize_report().unwrap();
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::LocalRace {
            kind: RaceKind::ReadWrite,
            index: 0,
            ..
        }
    )));
}

#[test]
fn fixture_lockstep_local_access_is_not_flagged() {
    let ctx = fixture_ctx();
    let mut q = ctx.queue();
    let out = ctx.buffer::<f32>("out", 1);
    let w = out.write_view();
    // Lanes 0 and 32 share wavefront 0: same-phase accesses execute in
    // lockstep and are exempt (the reduction kernels' unrolled tail).
    q.run(
        &KernelDesc::new_1d("lockstep", 128, 128),
        &[&out],
        move |g| {
            g.alloc_local(128);
            g.begin_item([32, 0]);
            g.local_write(0, 3.0);
            g.begin_item([0, 0]);
            let v = g.local_read(0);
            g.store(&w, 0, v);
        },
    )
    .unwrap();
    assert!(ctx.sanitize_report().unwrap().is_clean());
}

#[test]
fn fixture_barrier_separated_local_reuse_is_not_flagged() {
    let ctx = fixture_ctx();
    let mut q = ctx.queue();
    let out = ctx.buffer::<f32>("out", 1);
    let w = out.write_view();
    q.run(&KernelDesc::new_1d("phases", 128, 128), &[&out], move |g| {
        g.alloc_local(128);
        for l in items(g.group_size) {
            g.begin_item(l);
            g.local_write(l[0], l[0] as f32);
        }
        g.barrier();
        g.begin_item([0, 0]);
        let v = g.local_read(127); // written by lane 127 before the barrier
        g.store(&w, 0, v);
    })
    .unwrap();
    assert!(ctx.sanitize_report().unwrap().is_clean());
}

#[test]
fn fixture_global_oob_is_flagged_and_recovered() {
    let ctx = fixture_ctx();
    let mut q = ctx.queue();
    let buf = ctx.buffer::<f32>("small", 8);
    let (r, w) = (buf.view(), buf.write_view());
    // Both the read and the write land past the end; under sanitize the
    // dispatch still completes (read yields 0.0, write is dropped).
    q.run(&KernelDesc::new_1d("oob", 64, 64), &[&buf], move |g| {
        g.begin_item([0, 0]);
        let v = g.load(&r, 100);
        g.store(&w, 200, v + 1.0);
    })
    .unwrap();
    let report = ctx.sanitize_report().unwrap();
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::OobGlobal {
            index: 100,
            len: 8,
            write: false,
            ..
        }
    )));
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::OobGlobal {
            index: 200,
            len: 8,
            write: true,
            ..
        }
    )));
}

#[test]
fn fixture_local_oob_is_flagged_and_recovered() {
    let ctx = fixture_ctx();
    let mut q = ctx.queue();
    let out = ctx.buffer::<f32>("out", 1);
    let w = out.write_view();
    q.run(
        &KernelDesc::new_1d("oob_local", 64, 64),
        &[&out],
        move |g| {
            g.alloc_local(16);
            g.begin_item([0, 0]);
            let v = g.local_read(99);
            g.local_write(77, 1.0);
            g.store(&w, 0, v);
        },
    )
    .unwrap();
    let report = ctx.sanitize_report().unwrap();
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::OobLocal {
            index: 99,
            len: 16,
            write: false,
            ..
        }
    )));
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::OobLocal {
            index: 77,
            len: 16,
            write: true,
            ..
        }
    )));
}

#[test]
fn fixture_divergent_barrier_is_flagged() {
    let ctx = fixture_ctx();
    let mut q = ctx.queue();
    let out = ctx.buffer::<f32>("out", 64);
    let w = out.write_view();
    q.run(
        &KernelDesc::new_1d("div_barrier", 64, 64),
        &[&out],
        move |g| {
            g.alloc_local(64);
            for l in items(g.group_size) {
                g.begin_item(l);
                g.local_write(l[0], 1.0);
                if l[0] < 3 {
                    // Item-dependent barrier: items 3.. never reach it.
                    g.barrier();
                }
                let v = g.local_read(l[0]);
                g.store(&w, l[0], v);
            }
        },
    )
    .unwrap();
    let report = ctx.sanitize_report().unwrap();
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::BarrierDivergence { .. })));
}

#[test]
fn fixture_uncharged_reads_are_flagged_as_drift() {
    let ctx = fixture_ctx();
    let mut q = ctx.queue();
    let src = ctx.buffer_from("src", &[1.0f32; 32]);
    let out = ctx.buffer::<f32>("out", 1);
    let (r, w) = (src.view(), out.write_view());
    q.run(
        &KernelDesc::new_1d("drift_under", 64, 64),
        &[&out],
        move |g| {
            g.begin_item([0, 0]);
            // Raw accessor without a matching charge: observed > charged.
            let v = r.get_raw(3);
            g.store(&w, 0, v);
        },
    )
    .unwrap();
    let report = ctx.sanitize_report().unwrap();
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::AccountingDrift {
            class: DriftClass::Read,
            ..
        }
    )));
}

#[test]
fn fixture_phantom_charges_are_flagged_as_drift() {
    let ctx = fixture_ctx();
    let mut q = ctx.queue();
    let out = ctx.buffer::<f32>("out", 1);
    let w = out.write_view();
    q.run(
        &KernelDesc::new_1d("drift_over", 64, 64),
        &[&out],
        move |g| {
            g.begin_item([0, 0]);
            g.store(&w, 0, 1.0);
            // Charges write traffic that never happened: charged > observed.
            g.charge_global_n(0, 0, 4, 0, 10);
        },
    )
    .unwrap();
    let report = ctx.sanitize_report().unwrap();
    assert!(report.violations.iter().any(|v| matches!(
        v,
        Violation::AccountingDrift {
            class: DriftClass::Write,
            ..
        }
    )));
}

#[test]
fn fixture_uninit_read_is_flagged_in_strict_mode() {
    let config = SanitizeConfig {
        check_uninit_reads: true,
        ..SanitizeConfig::default()
    };
    let ctx = Context::new(spec()).with_sanitize(config);
    let mut q = ctx.queue();
    let src = ctx.buffer::<f32>("never_written", 16);
    let out = ctx.buffer::<f32>("out", 1);
    let (r, w) = (src.view(), out.write_view());
    q.run(&KernelDesc::new_1d("uninit", 64, 64), &[&out], move |g| {
        g.begin_item([0, 0]);
        let v = g.load(&r, 4);
        g.store(&w, 0, v);
    })
    .unwrap();
    let report = ctx.sanitize_report().unwrap();
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::UninitRead { index: 4, .. })));
}

// ---- error-path hygiene: panics become errors --------------------------

#[test]
fn unsanitized_oob_store_returns_kernel_panic_error() {
    let ctx = Context::new(spec());
    let mut q = ctx.queue();
    let buf = ctx.buffer::<f32>("small", 8);
    let w = buf.write_view();
    let err = q
        .run(
            &KernelDesc::new_1d("oob_panic", 64, 64),
            &[&buf],
            move |g| {
                g.begin_item([0, 0]);
                g.store(&w, 999, 1.0);
            },
        )
        .unwrap_err();
    match err {
        Error::KernelPanic { kernel, message } => {
            assert_eq!(kernel, "oob_panic");
            assert!(!message.is_empty());
        }
        other => panic!("expected KernelPanic, got {other:?}"),
    }
    // The queue remains usable: no command was recorded for the failed
    // dispatch and a subsequent good dispatch succeeds.
    let before = q.records().len();
    let ok = ctx.buffer::<f32>("ok", 64);
    let w2 = ok.write_view();
    q.run(&KernelDesc::new_1d("good", 64, 64), &[&ok], move |g| {
        for l in items(g.group_size) {
            g.begin_item(l);
            g.store(&w2, l[0], 1.0);
        }
    })
    .unwrap();
    assert_eq!(q.records().len(), before + 1);
}

// ---- buffer pool under the sanitizer -----------------------------------

#[test]
fn plan_drop_releases_pooled_buffers() {
    let img = generate::natural(64, 64, 3);
    let ctx = Context::new(spec());
    let pipe = GpuPipeline::new(ctx.clone(), SharpnessParams::default(), OptConfig::all());
    let plan = pipe.prepared(64, 64).unwrap();
    let live_with_plan = ctx.pool_stats().live;
    assert!(live_with_plan > 0, "a plan should hold pooled buffers");
    drop(plan);
    assert_eq!(
        ctx.pool_stats().live,
        0,
        "dropping the plan must retire every pooled buffer"
    );
    // And a throwaway full run leaves nothing live either.
    pipe.run(&img).unwrap();
    assert_eq!(ctx.pool_stats().live, 0);
}

#[test]
fn recycled_slabs_carry_no_stale_initialised_state() {
    // A recycled slab must look *uninitialised* to the sanitizer: if the
    // shadow survived recycling, stale data from the previous life could
    // be read silently. Strict mode must flag the read.
    let config = SanitizeConfig {
        check_uninit_reads: true,
        ..SanitizeConfig::default()
    };
    let ctx = Context::new(spec()).with_sanitize(config);
    {
        let b = ctx.buffer::<f32>("recycled", 32);
        b.fill_from(&[7.0; 32]); // fully initialised in its first life
    }
    assert_eq!(ctx.pool_stats().returns, 1);
    let b = ctx.buffer::<f32>("recycled", 32);
    assert_eq!(ctx.pool_stats().hits, 1, "slab must actually be recycled");
    let out = ctx.buffer::<f32>("out", 1);
    let (r, w) = (b.view(), out.write_view());
    let mut q = ctx.queue();
    q.run(&KernelDesc::new_1d("stale", 64, 64), &[&out], move |g| {
        g.begin_item([0, 0]);
        let v = g.load(&r, 0);
        g.store(&w, 0, v);
    })
    .unwrap();
    let report = ctx.sanitize_report().unwrap();
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UninitRead { .. })),
        "read of a recycled, unwritten slab must be flagged: {}",
        report.summary()
    );
}

#[test]
fn sanitized_pooled_pipeline_stays_clean_across_frames() {
    // Three frames through one sanitized, pooled context: recycled slabs
    // must not produce races, OOB, or drift on later frames.
    let ctx = Context::sanitized(spec());
    let pipe = GpuPipeline::new(ctx.clone(), SharpnessParams::default(), OptConfig::all());
    for seed in [1, 2, 3] {
        let img = generate::natural(64, 64, seed);
        pipe.run(&img).unwrap();
    }
    assert!(ctx.pool_stats().hits > 0, "frames should recycle buffers");
    let report = ctx.sanitize_report().unwrap();
    assert!(report.is_clean(), "{}", report.summary());
}
