//! Banded-vs-monolithic equivalence: the cache-blocked megapass schedule
//! must produce bit-identical pixels, identical simulated seconds and a
//! clean sanitizer verdict for every band height and optimization config —
//! banding is a host-side execution detail that the virtual machine must
//! not be able to observe.

use imagekit::generate;
use sharpness::prelude::*;

fn all_configs() -> Vec<OptConfig> {
    (0..64u32)
        .map(|bits| OptConfig {
            data_transfer: bits & 1 != 0,
            kernel_fusion: bits & 2 != 0,
            reduction_gpu: bits & 4 != 0,
            vectorization: bits & 8 != 0,
            border_gpu: bits & 16 != 0,
            others: bits & 32 != 0,
        })
        .collect()
}

/// Runs one frame under the given schedule and returns (pixels, elapsed).
fn run_with(opts: OptConfig, schedule: Schedule, w: usize, h: usize, seed: u64) -> (Vec<f32>, f64) {
    let img = generate::natural(w, h, seed);
    let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
    let pipe = GpuPipeline::new(ctx, SharpnessParams::default(), opts).with_schedule(schedule);
    let r = pipe
        .run(&img)
        .unwrap_or_else(|e| panic!("{opts:?} {schedule:?} {w}x{h}: {e}"));
    (r.output.pixels().to_vec(), r.total_s)
}

fn assert_equivalent(opts: OptConfig, rows: usize, w: usize, h: usize, seed: u64) {
    let (mono_px, mono_t) = run_with(opts, Schedule::Monolithic, w, h, seed);
    let (band_px, band_t) = run_with(opts, Schedule::Banded(rows), w, h, seed);
    assert_eq!(
        mono_px, band_px,
        "pixels differ: {opts:?} rows={rows} {w}x{h}"
    );
    assert_eq!(
        mono_t.to_bits(),
        band_t.to_bits(),
        "simulated time differs: {opts:?} rows={rows} {w}x{h}: {mono_t} vs {band_t}"
    );
}

// ---- band-edge cases: degenerate, prime, exact and oversized bands -----

#[test]
fn band_heights_at_the_edges_are_bit_identical_on_ragged_shapes() {
    for (w, h) in [(1001usize, 701usize), (1023, 769)] {
        // {1, prime, exactly the image height, beyond the image height}.
        for rows in [1usize, 7, h, h + 100] {
            assert_equivalent(OptConfig::none(), rows, w, h, 3);
            assert_equivalent(OptConfig::all(), rows, w, h, 3);
        }
    }
}

#[test]
fn mid_band_heights_are_bit_identical_across_representative_configs() {
    let representative = [
        OptConfig::none(),
        OptConfig::all(),
        OptConfig {
            kernel_fusion: true,
            reduction_gpu: true,
            ..OptConfig::none()
        },
        OptConfig {
            vectorization: true,
            data_transfer: true,
            ..OptConfig::none()
        },
        OptConfig {
            border_gpu: true,
            others: true,
            ..OptConfig::none()
        },
    ];
    for opts in representative {
        for rows in [32usize, 48, 160] {
            assert_equivalent(opts, rows, 1001, 701, 9);
        }
    }
}

#[test]
fn autotuned_band_height_is_bit_identical() {
    assert_equivalent(OptConfig::all(), 0, 1023, 769, 5);
}

#[test]
fn banded_runs_sanitize_clean() {
    let img = generate::natural(333, 257, 21);
    for opts in [OptConfig::none(), OptConfig::all()] {
        let ctx = Context::sanitized(DeviceSpec::firepro_w8000());
        let pipe = GpuPipeline::new(ctx.clone(), SharpnessParams::default(), opts)
            .with_schedule(Schedule::Banded(48));
        pipe.run(&img).expect("banded sanitized run failed");
        let report = ctx.sanitize_report().expect("sanitizer was enabled");
        assert!(report.is_clean(), "{opts:?}: {}", report.summary());
        assert!(report.dispatches > 0);
    }
}

#[test]
fn banded_plan_matches_fresh_banded_run() {
    let img = generate::natural(257, 129, 8);
    let ctx = Context::with_validation(DeviceSpec::firepro_w8000());
    let pipe = GpuPipeline::new(ctx, SharpnessParams::default(), OptConfig::all())
        .with_schedule(Schedule::Banded(64));
    let fresh = pipe.run(&img).unwrap();
    let mut plan = pipe.prepared(257, 129).unwrap();
    for _ in 0..2 {
        let planned = plan.run(&img).unwrap();
        assert_eq!(planned.output.pixels(), fresh.output.pixels());
        assert_eq!(planned.total_s.to_bits(), fresh.total_s.to_bits());
    }
}

// ---- the full sweep: all 64 configs, banded vs monolithic --------------
// Expensive; wired into `ci.sh --full` via `--ignored`.

#[test]
#[ignore]
fn full_sweep_all_64_configs_banded_bit_identical() {
    for (bits, opts) in all_configs().into_iter().enumerate() {
        for rows in [48usize, 1024] {
            let (mono_px, mono_t) = run_with(opts, Schedule::Monolithic, 333, 257, 13);
            let (band_px, band_t) = run_with(opts, Schedule::Banded(rows), 333, 257, 13);
            assert_eq!(mono_px, band_px, "bits {bits} rows {rows}: pixels differ");
            assert_eq!(
                mono_t.to_bits(),
                band_t.to_bits(),
                "bits {bits} rows {rows}: simulated time differs"
            );
        }
    }
}

#[test]
#[ignore]
fn full_sweep_all_64_configs_banded_sanitize_clean() {
    let img = generate::natural(333, 257, 13);
    for (bits, opts) in all_configs().into_iter().enumerate() {
        let ctx = Context::sanitized(DeviceSpec::firepro_w8000());
        let pipe = GpuPipeline::new(ctx.clone(), SharpnessParams::default(), opts)
            .with_schedule(Schedule::Banded(48));
        pipe.run(&img).expect("banded sanitized run failed");
        let report = ctx.sanitize_report().expect("sanitizer was enabled");
        assert!(report.is_clean(), "bits {bits}: {}", report.summary());
    }
}
