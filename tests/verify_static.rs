//! The static access-summary verifier (DESIGN.md §15): every pipeline
//! configuration proves bounds, write disjointness, charge accounting and
//! slice coverage symbolically — and the static enumeration agrees, slice
//! for slice, with what a live run actually declares.

use sharpness::prelude::*;
use simgpu::access::AccessSummary;

fn all_configs() -> Vec<OptConfig> {
    (0u32..64)
        .map(|bits| OptConfig {
            data_transfer: bits & 1 != 0,
            kernel_fusion: bits & 2 != 0,
            reduction_gpu: bits & 4 != 0,
            vectorization: bits & 8 != 0,
            border_gpu: bits & 16 != 0,
            others: bits & 32 != 0,
        })
        .collect()
}

/// Acceptance sweep: all 64 configs × four shapes (aligned, large-aligned,
/// ragged, odd) × both schedules verify statically — no execution at all.
#[test]
fn static_sweep_covers_all_configs_shapes_and_schedules() {
    let tuning = Tuning::default();
    for (w, h) in [(256, 256), (768, 768), (1001, 701), (1023, 769)] {
        for opts in all_configs() {
            for schedule in [Schedule::Monolithic, Schedule::Banded(64)] {
                let r = verify_static(w, h, &opts, &tuning, schedule)
                    .unwrap_or_else(|e| panic!("{w}x{h} {opts:?} {schedule:?}: {e}"));
                assert!(r.kernels >= 4, "{w}x{h} {opts:?}: {} dispatches", r.kernels);
                // Writes are always accounted exactly; reads may be
                // overcharged but never undercharged.
                assert_eq!(r.stats.charged_write_bytes, r.stats.declared_write_bytes);
                assert!(r.stats.charged_read_bytes >= r.stats.declared_read_bytes);
            }
        }
    }
}

/// The GPU border path must verify on both sides of the tuned crossover.
#[test]
fn static_sweep_covers_border_crossover() {
    let tuning = Tuning {
        border_gpu_min_width: 64,
        ..Tuning::default()
    };
    let opts = OptConfig {
        border_gpu: true,
        ..OptConfig::none()
    };
    for schedule in [Schedule::Monolithic, Schedule::Banded(48)] {
        let r = verify_static(101, 67, &opts, &tuning, schedule).unwrap();
        assert!(r.kernels >= 8, "border dispatches missing: {}", r.kernels);
    }
}

fn dynamic_log(opts: &OptConfig, schedule: Schedule, w: usize, h: usize) -> Vec<AccessSummary> {
    let ctx = Context::with_validation(DeviceSpec::firepro_w8000()).with_access_required();
    let img = generate::natural(w, h, 17);
    let mut plan = GpuPipeline::new(ctx, SharpnessParams::default(), *opts)
        .with_schedule(schedule)
        .prepared(w, h)
        .unwrap();
    plan.run(&img).unwrap();
    plan.take_access_log()
}

/// Agreement: a sanitized live run under `with_access_required` declares
/// exactly the summaries the static enumerator predicts — same kernels,
/// same slice partition, same windows, same charges, same ratios, in the
/// same commit order. Any drift between the executor and the static
/// schedule model fails here.
#[test]
fn static_enumeration_matches_dynamic_declarations() {
    let tuning = Tuning::default();
    for (w, h) in [(256, 256), (1001, 701)] {
        for opts in all_configs() {
            for schedule in [Schedule::Monolithic, Schedule::Banded(64)] {
                let log = dynamic_log(&opts, schedule, w, h);
                let predicted: Vec<AccessSummary> =
                    enumerate_access(w, h, &opts, &tuning, schedule)
                        .unwrap()
                        .into_iter()
                        .flat_map(|d| d.slices)
                        .collect();
                assert_eq!(
                    log.len(),
                    predicted.len(),
                    "{w}x{h} {opts:?} {schedule:?}: {} declared vs {} predicted",
                    log.len(),
                    predicted.len()
                );
                for (i, (got, want)) in log.iter().zip(&predicted).enumerate() {
                    assert_eq!(
                        got, want,
                        "{w}x{h} {opts:?} {schedule:?}: summary {i} (`{}`) diverges",
                        want.kernel
                    );
                }
            }
        }
    }
}

/// Full cross-validation under the shadow-execution sanitizer: every
/// config runs with the sanitizer auditing actual memory traffic AND the
/// access requirement on, and the declared summaries still agree with the
/// static enumeration byte for byte. This is the "summaries cannot rot"
/// guarantee: a declaration the kernel's real accesses outgrow is caught
/// by the sanitizer, and a schedule the enumerator mispredicts is caught
/// by the agreement check. Run by `ci.sh --full`.
#[test]
#[ignore = "minutes of sanitized execution; run via ci.sh --full"]
fn sanitized_sweep_cross_validates_declarations() {
    let tuning = Tuning::default();
    let mut cases: Vec<(usize, usize, OptConfig)> = all_configs()
        .into_iter()
        .map(|opts| (256, 256, opts))
        .collect();
    cases.push((1001, 701, OptConfig::none()));
    cases.push((1001, 701, OptConfig::all()));
    for (w, h, opts) in cases {
        for schedule in [Schedule::Monolithic, Schedule::Banded(64)] {
            let ctx = Context::sanitized(DeviceSpec::firepro_w8000()).with_access_required();
            let img = generate::natural(w, h, 17);
            let mut plan = GpuPipeline::new(ctx.clone(), SharpnessParams::default(), opts)
                .with_schedule(schedule)
                .prepared(w, h)
                .unwrap();
            plan.run(&img).unwrap();
            let san = ctx.sanitize_report().expect("sanitizer enabled");
            assert!(san.is_clean(), "{w}x{h} {opts:?} {schedule:?}: {san}");
            let log = plan.take_access_log();
            let predicted: Vec<AccessSummary> = enumerate_access(w, h, &opts, &tuning, schedule)
                .unwrap()
                .into_iter()
                .flat_map(|d| d.slices)
                .collect();
            assert_eq!(log, predicted, "{w}x{h} {opts:?} {schedule:?}");
        }
    }
}

/// Declaring access summaries (and verifying them on every dispatch) is
/// observation-only: pixels and simulated seconds are bit-identical with
/// the requirement on or off.
#[test]
fn access_verification_is_observation_only() {
    let img = generate::natural(167, 103, 23);
    for opts in [OptConfig::none(), OptConfig::all()] {
        for schedule in [Schedule::Monolithic, Schedule::Banded(32)] {
            let base = GpuPipeline::new(
                Context::new(DeviceSpec::firepro_w8000()),
                SharpnessParams::default(),
                opts,
            )
            .with_schedule(schedule)
            .run(&img)
            .unwrap();
            let checked = GpuPipeline::new(
                Context::with_validation(DeviceSpec::firepro_w8000()).with_access_required(),
                SharpnessParams::default(),
                opts,
            )
            .with_schedule(schedule)
            .run(&img)
            .unwrap();
            assert_eq!(base.output.pixels(), checked.output.pixels());
            assert_eq!(base.total_s.to_bits(), checked.total_s.to_bits());
        }
    }
}
