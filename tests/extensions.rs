//! Integration tests for the extension layers: streaming overlap, colour
//! sharpening, memory planning, tracing, and the CLI plumbing.

use sharpness::core::color::{sharpen_rgb, ColorMode};
use sharpness::core::gpu::batch::{pipelined_time, FrameComponents, StreamingPipeline};
use sharpness::core::memory;
use sharpness::prelude::*;
use sharpness::simgpu::trace;

fn gpu(opts: OptConfig) -> GpuPipeline {
    GpuPipeline::new(
        Context::new(DeviceSpec::firepro_w8000()),
        SharpnessParams::default(),
        opts,
    )
}

#[test]
fn streaming_respects_frame_order_and_content() {
    let frames: Vec<_> = (0..4).map(|i| generate::natural(64, 64, i)).collect();
    let stream = StreamingPipeline::new(gpu(OptConfig::all()))
        .run_stream(&frames)
        .unwrap();
    assert_eq!(stream.outputs.len(), 4);
    // Different frames give different outputs (order preserved).
    assert_ne!(stream.outputs[0], stream.outputs[1]);
    for (f, out) in frames.iter().zip(&stream.outputs) {
        assert_eq!((f.width(), f.height()), (out.width(), out.height()));
    }
}

#[test]
fn streaming_overlap_bounded_by_components() {
    let frames: Vec<_> = (0..5)
        .map(|i| generate::natural(128, 128, 10 + i))
        .collect();
    let stream = StreamingPipeline::new(gpu(OptConfig::all()))
        .run_stream(&frames)
        .unwrap();
    let up: f64 = stream.frames.iter().map(|f| f.upload_s).sum();
    let comp: f64 = stream.frames.iter().map(|f| f.compute_s).sum();
    let down: f64 = stream.frames.iter().map(|f| f.download_s).sum();
    assert!(stream.pipelined_s >= up.max(comp).max(down) - 1e-12);
    assert!(stream.pipelined_s <= stream.serial_s + 1e-12);
    // Recomputing from components matches the report.
    assert!((pipelined_time(&stream.frames) - stream.pipelined_s).abs() < 1e-15);
}

#[test]
fn base_pipeline_streams_too() {
    // The base (map/unmap) configuration also decomposes cleanly.
    let frames: Vec<_> = (0..3).map(|i| generate::natural(64, 64, i)).collect();
    let stream = StreamingPipeline::new(gpu(OptConfig::none()))
        .run_stream(&frames)
        .unwrap();
    for f in &stream.frames {
        assert!(f.upload_s > 0.0 && f.compute_s > 0.0 && f.download_s > 0.0);
    }
}

#[test]
fn empty_stream_is_empty() {
    let stream = StreamingPipeline::new(gpu(OptConfig::all()))
        .run_stream(&[])
        .unwrap();
    assert_eq!(stream.outputs.len(), 0);
    assert_eq!(stream.pipelined_s, 0.0);
    assert_eq!(stream.serial_s, 0.0);
}

#[test]
fn color_modes_work_on_gpu_and_cpu() {
    let g = generate::natural(64, 64, 4).to_u8();
    let frame = imagekit::rgb::gray_to_rgb(&g);
    let cpu = CpuPipeline::new(SharpnessParams::default());
    for mode in [ColorMode::LumaOnly, ColorMode::PerChannel] {
        let a = sharpen_rgb(&cpu, &frame, mode).unwrap();
        let b = sharpen_rgb(&gpu(OptConfig::all()), &frame, mode).unwrap();
        assert_eq!(a.output.width(), 64);
        // CPU and GPU colour outputs within one quantisation level.
        for (x, y) in a.output.bytes().iter().zip(b.output.bytes()) {
            assert!(x.abs_diff(*y) <= 1);
        }
    }
}

#[test]
fn memory_plan_matches_streaming_needs() {
    let opts = OptConfig::all();
    let per_frame = memory::device_bytes_required(1920, 1088, &opts);
    // Double buffering of full-HD f32 frames fits comfortably in the
    // W8000's 4 GiB.
    assert!(2 * per_frame < 4 << 30);
    assert!(memory::frames_resident(4 << 30, 1920, 1088, &opts) >= 2);
}

#[test]
fn trace_of_a_real_run_covers_all_lanes() {
    let img = generate::natural(64, 64, 6);
    let run = gpu(OptConfig::all()).run(&img).unwrap();
    let records = sharpness::cli::report_to_records(&run);
    let json = trace::to_chrome_json(&records);
    // All three lanes appear: transfers, kernels, host work.
    assert!(json.contains("bus: transfers"));
    assert!(json.contains("device: kernels"));
    assert!(json.contains("host: cpu work"));
    let g = trace::gantt(&records, 80);
    assert_eq!(g.lines().count(), records.len() + 1);
    // Timeline reconstruction is contiguous: starts sum to durations.
    let mut t = 0.0;
    for r in &records {
        assert!((r.start_s - t).abs() < 1e-12);
        t += r.duration_s;
    }
}

#[test]
fn pipelined_time_degenerate_components() {
    // Zero-length stages collapse gracefully.
    let frames = vec![
        FrameComponents {
            upload_s: 0.0,
            compute_s: 1.0,
            download_s: 0.0
        };
        4
    ];
    assert!((pipelined_time(&frames) - 4.0).abs() < 1e-12);
    assert_eq!(pipelined_time(&[]), 0.0);
}

#[test]
fn minimum_size_image_works_with_every_flag_set() {
    // 16×16 is the smallest legal frame; vec4 kernels, GPU border and the
    // tree reduction must all cope.
    let img = generate::natural(16, 16, 3);
    let cpu = CpuPipeline::new(SharpnessParams::default())
        .run(&img)
        .unwrap();
    let tuning = Tuning {
        border_gpu_min_width: 0,
        ..Tuning::default()
    }; // force the GPU border even here
    let gpu_run = GpuPipeline::new(
        Context::with_validation(DeviceSpec::firepro_w8000()),
        SharpnessParams::default(),
        OptConfig::all(),
    )
    .with_tuning(tuning)
    .run(&img)
    .unwrap();
    assert!(gpu_run.output.max_abs_diff(&cpu.output) < 0.05);
}

#[test]
fn wide_and_tall_extremes() {
    for (w, h) in [(256, 16), (16, 256)] {
        let img = generate::natural(w, h, 8);
        let cpu = CpuPipeline::new(SharpnessParams::default())
            .run(&img)
            .unwrap();
        let gpu_run = GpuPipeline::new(
            Context::with_validation(DeviceSpec::firepro_w8000()),
            SharpnessParams::default(),
            OptConfig::all(),
        )
        .run(&img)
        .unwrap();
        assert!(gpu_run.output.max_abs_diff(&cpu.output) < 0.05, "{w}x{h}");
    }
}

#[test]
fn all_reduction_strategies_through_the_full_pipeline() {
    use sharpness::core::gpu::kernels::reduction::ReductionStrategy;
    let img = generate::natural(96, 96, 12);
    let cpu = CpuPipeline::new(SharpnessParams::default())
        .run(&img)
        .unwrap();
    for strategy in [
        ReductionStrategy::NoUnroll,
        ReductionStrategy::UnrollOne,
        ReductionStrategy::UnrollTwo,
    ] {
        let tuning = Tuning {
            reduction_strategy: strategy,
            ..Tuning::default()
        };
        let run = gpu(OptConfig::all()).with_tuning(tuning).run(&img).unwrap();
        assert!(run.output.max_abs_diff(&cpu.output) < 0.05, "{strategy:?}");
    }
}

#[test]
fn stage2_on_device_through_the_full_pipeline() {
    let img = generate::natural(128, 128, 13);
    let cpu = CpuPipeline::new(SharpnessParams::default())
        .run(&img)
        .unwrap();
    let tuning = Tuning {
        stage2_gpu_threshold: 0,
        ..Tuning::default()
    }; // force device stage 2
    let run = gpu(OptConfig::all()).with_tuning(tuning).run(&img).unwrap();
    assert!(run.output.max_abs_diff(&cpu.output) < 0.05);
    assert!(run
        .stages
        .iter()
        .any(|s| s.name.as_ref() == "reduction_stage2"));
}

#[test]
fn other_device_presets_run_the_full_pipeline() {
    let img = generate::natural(64, 64, 14);
    let cpu = CpuPipeline::new(SharpnessParams::default())
        .run(&img)
        .unwrap();
    for dev in [DeviceSpec::midrange_gpu(), DeviceSpec::apu()] {
        let run = GpuPipeline::new(
            Context::new(dev),
            SharpnessParams::default(),
            OptConfig::all(),
        )
        .run(&img)
        .unwrap();
        // Timing differs per device; pixels must not.
        assert!(run.output.max_abs_diff(&cpu.output) < 0.05);
    }
}
